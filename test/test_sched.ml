(* Tests for the scheduler substrate (lib/sched): the related-work
   baselines behind the common FAIR interface, the real-time leaf
   schedulers (EDF, RM), and the SVR4 TS/RT model. *)

open Hsfq_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------- generic FAIR battery ---------------------------- *)

(* Shares of two always-backlogged clients with weights 1 and 3 after
   many unit quanta. *)
let measured_ratio (module F : Scheduler_intf.FAIR) ~rounds =
  let t = F.create ~rng:(Hsfq_engine.Prng.create 11) ~quantum_hint:1. () in
  F.arrive t ~id:1 ~weight:1.;
  F.arrive t ~id:2 ~weight:3.;
  let work = [| 0.; 0. |] in
  for _ = 1 to rounds do
    match F.select t with
    | Some id ->
      F.charge t ~id ~service:1. ~runnable:true;
      work.(id - 1) <- work.(id - 1) +. 1.
    | None -> Alcotest.fail "work conservation violated"
  done;
  work.(1) /. work.(0)

let fair_battery name (module F : Scheduler_intf.FAIR) =
  let basic () =
    let t = F.create ~rng:(Hsfq_engine.Prng.create 1) () in
    check_int "empty backlog" 0 (F.backlogged t);
    Alcotest.(check (option int)) "empty select" None (F.select t);
    F.arrive t ~id:7 ~weight:2.;
    F.arrive t ~id:7 ~weight:5.;
    check_int "arrive idempotent" 1 (F.backlogged t);
    (match F.select t with
    | Some 7 -> F.charge t ~id:7 ~service:1. ~runnable:false
    | _ -> Alcotest.fail "expected client 7");
    check_int "blocked" 0 (F.backlogged t);
    F.arrive t ~id:7 ~weight:2.;
    check_int "woke" 1 (F.backlogged t);
    F.depart t ~id:7;
    check_int "departed" 0 (F.backlogged t)
  in
  let conservation () =
    let t = F.create ~rng:(Hsfq_engine.Prng.create 2) () in
    for i = 1 to 4 do
      F.arrive t ~id:i ~weight:(float_of_int i)
    done;
    for _ = 1 to 200 do
      match F.select t with
      | Some id -> F.charge t ~id ~service:0.5 ~runnable:true
      | None -> Alcotest.fail "no selection with backlog"
    done;
    check_int "all still backlogged" 4 (F.backlogged t)
  in
  [
    Alcotest.test_case (name ^ " lifecycle") `Quick basic;
    Alcotest.test_case (name ^ " work conservation") `Quick conservation;
  ]

let test_proportional name (module F : Scheduler_intf.FAIR) ~tol () =
  let r = measured_ratio (module F) ~rounds:8000 in
  check_bool
    (Printf.sprintf "%s ratio ~3 (got %.3f)" name r)
    true
    (Float.abs (r -. 3.) < tol)

(* ----------------------- algorithm-specifics ------------------------- *)

let test_wfq_overcharges_short_quanta () =
  (* The §6 drawback: WFQ charges the assumed quantum, so a client that
     blocks early (uses 0.2 of its assumed 1.0) loses its fair share. *)
  let t = Wfq.create ~quantum_hint:1. () in
  Wfq.arrive t ~id:1 ~weight:1.;
  Wfq.arrive t ~id:2 ~weight:1.;
  let work = [| 0.; 0. |] in
  for _ = 1 to 600 do
    match Wfq.select t with
    | Some 1 ->
      Wfq.charge t ~id:1 ~service:1. ~runnable:true;
      work.(0) <- work.(0) +. 1.
    | Some 2 ->
      (* Blocks immediately after a short burst, returns right away. *)
      Wfq.charge t ~id:2 ~service:0.2 ~runnable:false;
      work.(1) <- work.(1) +. 0.2;
      Wfq.arrive t ~id:2 ~weight:1.
    | _ -> Alcotest.fail "selection expected"
  done;
  check_bool "short-quantum client far below its half" true
    (work.(1) /. work.(0) < 0.4)

let test_fqs_charges_actual_length () =
  (* FQS fixes the WFQ problem: the same bursty client keeps pace. *)
  let t = Fqs.create () in
  Fqs.arrive t ~id:1 ~weight:1.;
  Fqs.arrive t ~id:2 ~weight:1.;
  let work = [| 0.; 0. |] in
  for _ = 1 to 600 do
    match Fqs.select t with
    | Some 1 ->
      Fqs.charge t ~id:1 ~service:1. ~runnable:true;
      work.(0) <- work.(0) +. 1.
    | Some 2 ->
      Fqs.charge t ~id:2 ~service:0.2 ~runnable:false;
      work.(1) <- work.(1) +. 0.2;
      Fqs.arrive t ~id:2 ~weight:1.
    | _ -> Alcotest.fail "selection expected"
  done;
  (* The bursty client is demand-limited, but per unit of virtual time it
     is not penalized: it runs 5x as often as the hog. *)
  check_bool "bursty client runs much more often under FQS" true
    (work.(1) /. work.(0) > 0.8)

let test_scfq_virtual_time_is_finish_tag () =
  let t = Scfq.create ~quantum_hint:2. () in
  Scfq.arrive t ~id:1 ~weight:1.;
  (match Scfq.select t with
  | Some 1 -> ()
  | _ -> Alcotest.fail "client 1");
  (* F = max(v=0, 0) + 2/1 = 2 — v(t) is the in-service finish tag. *)
  check_float "v = finish of in-service" 2. (Scfq.virtual_time t);
  Scfq.charge t ~id:1 ~service:2. ~runnable:true

let test_stride_deterministic_sequence () =
  let t = Stride.create () in
  Stride.arrive t ~id:1 ~weight:1.;
  Stride.arrive t ~id:2 ~weight:3.;
  let seq =
    List.init 8 (fun _ ->
        match Stride.select t with
        | Some id ->
          Stride.charge t ~id ~service:1. ~runnable:true;
          id
        | None -> Alcotest.fail "selection")
  in
  (* Passes: c1 strides 1, c2 strides 1/3 — c2 runs 3 of every 4. *)
  check_int "client 1 runs twice in 8" 2
    (List.length (List.filter (fun i -> i = 1) seq))

let test_stride_remain_preserved () =
  let t = Stride.create () in
  Stride.arrive t ~id:1 ~weight:1.;
  Stride.arrive t ~id:2 ~weight:1.;
  (* Let 1 run ahead, then block it mid-stride; on wake it must not be
     owed the whole sleep. *)
  (match Stride.select t with
  | Some id -> Stride.charge t ~id ~service:4. ~runnable:(id <> 1)
  | None -> Alcotest.fail "sel");
  for _ = 1 to 10 do
    match Stride.select t with
    | Some id -> Stride.charge t ~id ~service:1. ~runnable:true
    | None -> Alcotest.fail "sel"
  done;
  Stride.arrive t ~id:1 ~weight:1.;
  let counts = [| 0; 0 |] in
  for _ = 1 to 100 do
    match Stride.select t with
    | Some id ->
      Stride.charge t ~id ~service:1. ~runnable:true;
      counts.(id - 1) <- counts.(id - 1) + 1
    | None -> Alcotest.fail "sel"
  done;
  check_bool "no catch-up flood after wake" true
    (abs (counts.(0) - counts.(1)) <= 6)

let test_lottery_statistical_ratio () =
  let r = measured_ratio (module Lottery) ~rounds:30_000 in
  check_bool (Printf.sprintf "lottery ratio ~3 (got %.2f)" r) true
    (Float.abs (r -. 3.) < 0.25)

let test_lottery_deterministic_under_seed () =
  let run () =
    let t = Lottery.create ~rng:(Hsfq_engine.Prng.create 77) () in
    Lottery.arrive t ~id:1 ~weight:1.;
    Lottery.arrive t ~id:2 ~weight:2.;
    List.init 50 (fun _ ->
        match Lottery.select t with
        | Some id ->
          Lottery.charge t ~id ~service:1. ~runnable:true;
          id
        | None -> 0)
  in
  Alcotest.(check (list int)) "same seed, same draws" (run ()) (run ())

let test_eevdf_eligibility () =
  let t = Eevdf.create ~quantum_hint:1. () in
  Eevdf.arrive t ~id:1 ~weight:1.;
  Eevdf.arrive t ~id:2 ~weight:1.;
  (* Client 1 runs a big quantum: its eligible time moves far ahead, so
     client 2 must run the next several quanta. *)
  (match Eevdf.select t with
  | Some id -> Eevdf.charge t ~id ~service:4. ~runnable:true
  | None -> Alcotest.fail "sel");
  let next3 =
    List.init 3 (fun _ ->
        match Eevdf.select t with
        | Some id ->
          Eevdf.charge t ~id ~service:1. ~runnable:true;
          id
        | None -> 0)
  in
  check_bool "lagging client catches up" true (List.for_all (fun i -> i = 2) next3)

let test_round_robin_ignores_weights () =
  let t = Round_robin.create () in
  Round_robin.arrive t ~id:1 ~weight:1.;
  Round_robin.arrive t ~id:2 ~weight:100.;
  let seq =
    List.init 6 (fun _ ->
        match Round_robin.select t with
        | Some id ->
          Round_robin.charge t ~id ~service:1. ~runnable:true;
          id
        | None -> 0)
  in
  Alcotest.(check (list int)) "alternates regardless of weight"
    [ 1; 2; 1; 2; 1; 2 ] seq

let test_fifo_runs_to_completion () =
  let t = Fifo_sched.create () in
  Fifo_sched.arrive t ~id:1 ~weight:1.;
  Fifo_sched.arrive t ~id:2 ~weight:1.;
  (* Head keeps being selected until it blocks. *)
  for _ = 1 to 3 do
    match Fifo_sched.select t with
    | Some 1 -> Fifo_sched.charge t ~id:1 ~service:1. ~runnable:true
    | _ -> Alcotest.fail "head should keep running"
  done;
  (match Fifo_sched.select t with
  | Some 1 -> Fifo_sched.charge t ~id:1 ~service:1. ~runnable:false
  | _ -> Alcotest.fail "head");
  (match Fifo_sched.select t with
  | Some 2 -> Fifo_sched.charge t ~id:2 ~service:1. ~runnable:true
  | _ -> Alcotest.fail "next in line");
  (* A re-arrival goes to the back. *)
  Fifo_sched.arrive t ~id:1 ~weight:1.;
  match Fifo_sched.select t with
  | Some 2 -> Fifo_sched.charge t ~id:2 ~service:1. ~runnable:true
  | _ -> Alcotest.fail "2 still ahead of re-arrived 1"

(* ------------------------- GPS real-time clock ----------------------- *)

let ms = Hsfq_engine.Time.milliseconds

let test_gps_vt_advances_with_wall_time () =
  let t = Gps_vt.create ~order:Gps_vt.Finish_tags ~capacity:1.0 ~quantum_hint:10. () in
  Gps_vt.arrive t ~now:0 ~id:1 ~weight:2.;
  (* 10 ns of wall time at capacity 1 with total weight 2: v += 5. *)
  Alcotest.(check (float 1e-9)) "v tracks wall clock" 5.
    (Gps_vt.virtual_time t ~now:10);
  (* While nothing is backlogged the clock stands still. *)
  (match Gps_vt.select t ~now:10 with
  | Some 1 -> Gps_vt.charge t ~now:12 ~id:1 ~service:2. ~runnable:false
  | _ -> Alcotest.fail "select");
  let v = Gps_vt.virtual_time t ~now:12 in
  Alcotest.(check (float 1e-9)) "idle clock frozen" v
    (Gps_vt.virtual_time t ~now:1000)

let test_gps_vt_proportional_at_full_capacity () =
  (* With steady full-capacity service, both orders are weight-fair. *)
  List.iter
    (fun order ->
      let t = Gps_vt.create ~order ~capacity:1.0 ~quantum_hint:(float_of_int (ms 20)) () in
      Gps_vt.arrive t ~now:0 ~id:1 ~weight:1.;
      Gps_vt.arrive t ~now:0 ~id:2 ~weight:3.;
      let now = ref 0 and work = [| 0; 0 |] in
      for _ = 1 to 4000 do
        match Gps_vt.select t ~now:!now with
        | Some id ->
          now := !now + ms 20;
          work.(id - 1) <- work.(id - 1) + ms 20;
          Gps_vt.charge t ~now:!now ~id ~service:(float_of_int (ms 20)) ~runnable:true
        | None -> Alcotest.fail "work conservation"
      done;
      let ratio = float_of_int work.(1) /. float_of_int work.(0) in
      check_bool "ratio ~3 at full capacity" true (Float.abs (ratio -. 3.) < 0.05))
    [ Gps_vt.Finish_tags; Gps_vt.Start_tags ]

let test_gps_vt_unfair_at_reduced_capacity () =
  (* Serve only every other quantum (50% capacity): v races ahead of the
     delivered service and the allocation collapses toward round-robin. *)
  let t =
    Gps_vt.create ~order:Gps_vt.Finish_tags ~capacity:1.0
      ~quantum_hint:(float_of_int (ms 20)) ()
  in
  Gps_vt.arrive t ~now:0 ~id:1 ~weight:1.;
  Gps_vt.arrive t ~now:0 ~id:2 ~weight:3.;
  let now = ref 0 and work = [| 0; 0 |] in
  for _ = 1 to 2000 do
    match Gps_vt.select t ~now:!now with
    | Some id ->
      (* each 20 ms of service takes 40 ms of wall time *)
      now := !now + (2 * ms 20);
      work.(id - 1) <- work.(id - 1) + ms 20;
      Gps_vt.charge t ~now:!now ~id ~service:(float_of_int (ms 20)) ~runnable:true
    | None -> Alcotest.fail "work conservation"
  done;
  let ratio = float_of_int work.(1) /. float_of_int work.(0) in
  (* Full capacity gives 3.0; at half capacity the 1:3 weights visibly
     erode (2.0 here; longer starvation bursts erode further — xfair). *)
  check_bool
    (Printf.sprintf "weights eroded toward equal shares (ratio %.2f)" ratio)
    true (ratio < 2.5)

let test_gps_vt_admin () =
  let t = Gps_vt.create ~order:Gps_vt.Start_tags ~quantum_hint:10. () in
  Gps_vt.arrive t ~now:0 ~id:1 ~weight:1.;
  Gps_vt.arrive t ~now:0 ~id:2 ~weight:1.;
  check_int "backlogged" 2 (Gps_vt.backlogged t);
  Gps_vt.set_weight t ~id:2 ~weight:4.;
  (match Gps_vt.select t ~now:0 with
  | Some id -> Gps_vt.charge t ~now:(ms 1) ~id ~service:10. ~runnable:false
  | None -> Alcotest.fail "sel");
  check_int "one left" 1 (Gps_vt.backlogged t);
  Gps_vt.depart t ~id:1;
  Gps_vt.depart t ~id:2;
  check_int "empty" 0 (Gps_vt.backlogged t);
  Alcotest.check_raises "unknown after depart"
    (Invalid_argument "Gps_vt: unknown client 1") (fun () ->
      Gps_vt.set_weight t ~id:1 ~weight:1.)

(* ------------------------------ EDF ---------------------------------- *)

let test_edf_ordering () =
  let t = Edf.create () in
  Edf.release t ~id:1 ~deadline:30.;
  Edf.release t ~id:2 ~deadline:10.;
  Edf.release t ~id:3 ~deadline:20.;
  Alcotest.(check (option int)) "earliest deadline" (Some 2) (Edf.select t);
  Edf.withdraw t ~id:2;
  Alcotest.(check (option int)) "next earliest" (Some 3) (Edf.select t);
  check_int "backlog" 2 (Edf.backlogged t);
  Alcotest.(check (option (float 0.))) "deadline_of" (Some 30.)
    (Edf.deadline_of t ~id:1);
  Alcotest.(check (option (float 0.))) "withdrawn has none" None
    (Edf.deadline_of t ~id:2)

let test_edf_rerelease_updates () =
  let t = Edf.create () in
  Edf.release t ~id:1 ~deadline:50.;
  Edf.release t ~id:2 ~deadline:40.;
  Edf.release t ~id:1 ~deadline:10.;
  Alcotest.(check (option int)) "re-release re-orders" (Some 1) (Edf.select t)

let test_edf_fifo_ties () =
  let t = Edf.create () in
  Edf.release t ~id:5 ~deadline:10.;
  Edf.release t ~id:3 ~deadline:10.;
  Alcotest.(check (option int)) "FIFO among equal deadlines" (Some 5) (Edf.select t)

(* ------------------------------- RM ---------------------------------- *)

let test_rm_priority_order () =
  let t = Rm.create () in
  Rm.register t ~id:1 ~period:100.;
  Rm.register t ~id:2 ~period:20.;
  Rm.register t ~id:3 ~period:50.;
  Alcotest.(check (option int)) "nothing ready" None (Rm.select t);
  Rm.wake t ~id:1;
  Rm.wake t ~id:3;
  Alcotest.(check (option int)) "shortest ready period" (Some 3) (Rm.select t);
  Rm.wake t ~id:2;
  Alcotest.(check (option int)) "new shortest" (Some 2) (Rm.select t);
  Rm.block t ~id:2;
  Alcotest.(check (option int)) "back to 3" (Some 3) (Rm.select t);
  check_bool "higher_priority" true (Rm.higher_priority t 2 ~than:1);
  check_bool "not higher" false (Rm.higher_priority t 1 ~than:3)

let test_rm_tie_by_registration () =
  let t = Rm.create () in
  Rm.register t ~id:9 ~period:10.;
  Rm.register t ~id:4 ~period:10.;
  Rm.wake t ~id:9;
  Rm.wake t ~id:4;
  Alcotest.(check (option int)) "registration order breaks ties" (Some 9)
    (Rm.select t);
  check_bool "tie: earlier registration wins" true (Rm.higher_priority t 9 ~than:4)

let test_rm_unregister () =
  let t = Rm.create () in
  Rm.register t ~id:1 ~period:10.;
  Rm.wake t ~id:1;
  Rm.unregister t ~id:1;
  check_int "gone" 0 (Rm.backlogged t);
  Alcotest.(check (option (float 0.))) "no period" None (Rm.period_of t ~id:1)

(* ------------------------------ SVR4 --------------------------------- *)

let tick = Hsfq_engine.Time.milliseconds 10

let test_svr4_ts_quantum_expiry_demotes () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  check_int "initial user priority" 29 (Svr4.prio_of t ~id:1);
  let q = Svr4.quantum_of t ~id:1 in
  check_int "prio-29 quantum = 12 ticks" (12 * tick) q;
  (match Svr4.select t with
  | Some 1 -> Svr4.charge t ~id:1 ~service:q ~runnable:true
  | _ -> Alcotest.fail "select");
  check_int "tqexp demotion" 19 (Svr4.prio_of t ~id:1)

let test_svr4_partial_use_keeps_priority () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  (match Svr4.select t with
  | Some 1 -> Svr4.charge t ~id:1 ~service:tick ~runnable:true
  | _ -> Alcotest.fail "select");
  check_int "no demotion before expiry" 29 (Svr4.prio_of t ~id:1);
  check_int "remaining quantum shrank" (11 * tick) (Svr4.quantum_of t ~id:1)

let test_svr4_sleep_return_boost () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  (match Svr4.select t with
  | Some 1 -> Svr4.charge t ~id:1 ~service:tick ~runnable:false
  | _ -> Alcotest.fail "select");
  Svr4.wake t ~id:1;
  check_int "slpret boost" 54 (Svr4.prio_of t ~id:1)

let test_svr4_wake_without_boost () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  Svr4.block t ~id:1;
  Svr4.wake ~boost:false t ~id:1;
  check_int "admission wake keeps priority" 29 (Svr4.prio_of t ~id:1)

let test_svr4_starvation_boost () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  Svr4.add t ~id:2 Svr4.Ts;
  (* 1 runs; 2 waits through a second_tick: maxwait 0 -> lwait boost
     (prio 29's lwait is 50 + 29/6 = 54). *)
  (match Svr4.select t with
  | Some 1 -> Svr4.charge t ~id:1 ~service:tick ~runnable:true
  | _ -> Alcotest.fail "expected 1 first (FIFO)");
  Svr4.second_tick t;
  check_int "waiting thread boosted to lwait" 54 (Svr4.prio_of t ~id:2);
  (* A freshly added prio-29 thread must lose to the boosted ones. *)
  Svr4.add t ~id:3 Svr4.Ts;
  match Svr4.select t with
  | Some id when id <> 3 -> Svr4.charge t ~id ~service:tick ~runnable:true
  | _ -> Alcotest.fail "boosted thread should be selected first"

let test_svr4_tick_accounting_overcharges () =
  let t = Svr4.create () (* tick accounting on *) in
  Svr4.add t ~id:1 Svr4.Ts;
  let q = Svr4.quantum_of t ~id:1 in
  (* Twelve 1 ms slices are billed as twelve full ticks: the quantum is
     exhausted after 12 runs even though only 12 ms of CPU were used. *)
  let runs = ref 0 in
  while Svr4.prio_of t ~id:1 = 29 && !runs < 100 do
    (match Svr4.select t with
    | Some 1 -> Svr4.charge t ~id:1 ~service:(Hsfq_engine.Time.milliseconds 1) ~runnable:true
    | _ -> Alcotest.fail "select");
    incr runs
  done;
  check_int "overcharged: expired after quantum_ticks short runs" (q / tick) !runs

let test_svr4_exact_accounting () =
  let t = Svr4.create ~tick_accounting:false () in
  Svr4.add t ~id:1 Svr4.Ts;
  for _ = 1 to 12 do
    match Svr4.select t with
    | Some 1 -> Svr4.charge t ~id:1 ~service:(Hsfq_engine.Time.milliseconds 1) ~runnable:true
    | _ -> Alcotest.fail "select"
  done;
  check_int "12 ms of exact use never expires a 120 ms quantum" 29
    (Svr4.prio_of t ~id:1)

let test_svr4_rt_above_ts () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  Svr4.add t ~id:2 (Svr4.Rt 3);
  Svr4.add t ~id:3 (Svr4.Rt 7);
  Alcotest.(check (option int)) "highest RT first" (Some 3) (Svr4.select t);
  Svr4.charge t ~id:3 ~service:tick ~runnable:false;
  Alcotest.(check (option int)) "then lower RT" (Some 2) (Svr4.select t);
  Svr4.charge t ~id:2 ~service:tick ~runnable:false;
  Alcotest.(check (option int)) "then TS" (Some 1) (Svr4.select t);
  Svr4.charge t ~id:1 ~service:tick ~runnable:true;
  check_bool "RT preempts TS" true (Svr4.preempts t ~waker:2 ~running:1);
  check_bool "higher RT preempts lower" true (Svr4.preempts t ~waker:3 ~running:2);
  check_bool "TS never preempts" false (Svr4.preempts t ~waker:1 ~running:2)

let test_svr4_rt_fifo_within_priority () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 (Svr4.Rt 5);
  Svr4.add t ~id:2 (Svr4.Rt 5);
  Alcotest.(check (option int)) "FIFO within RT priority" (Some 1) (Svr4.select t);
  Svr4.charge t ~id:1 ~service:(Svr4.quantum_of t ~id:1) ~runnable:true;
  Alcotest.(check (option int)) "round robin after full quantum" (Some 2)
    (Svr4.select t);
  Svr4.charge t ~id:2 ~service:tick ~runnable:true

let test_svr4_remove_and_errors () =
  let t = Svr4.create () in
  Svr4.add t ~id:1 Svr4.Ts;
  check_bool "is_rt false" false (Svr4.is_rt t ~id:1);
  Svr4.remove t ~id:1;
  check_int "removed" 0 (Svr4.backlogged t);
  Alcotest.check_raises "unknown thread" (Invalid_argument "Svr4: unknown thread 1")
    (fun () -> ignore (Svr4.prio_of t ~id:1));
  Alcotest.check_raises "duplicate add" (Invalid_argument "Svr4.add: duplicate id")
    (fun () ->
      Svr4.add t ~id:2 Svr4.Ts;
      Svr4.add t ~id:2 Svr4.Ts)

let test_svr4_default_table_shape () =
  let table = Svr4.default_table () in
  check_int "60 levels" 60 (Array.length table);
  check_bool "low prio has long quanta" true
    (table.(0).Svr4.quantum_ticks > table.(59).Svr4.quantum_ticks);
  Array.iteri
    (fun p row ->
      check_bool "tqexp demotes" true (row.Svr4.tqexp <= p);
      check_bool "slpret boosts" true (row.Svr4.slpret >= 50);
      check_bool "lwait boosts" true (row.Svr4.lwait >= 50))
    table

let test_svr4_custom_maxwait () =
  (* With maxwait = 2, a waiting thread is boosted only after the third
     housekeeping tick. *)
  let table =
    Array.map (fun r -> { r with Svr4.maxwait_s = 2 }) (Svr4.default_table ())
  in
  let t = Svr4.create ~table () in
  Svr4.add t ~id:1 Svr4.Ts;
  Svr4.add t ~id:2 Svr4.Ts;
  (match Svr4.select t with
  | Some 1 -> Svr4.charge t ~id:1 ~service:tick ~runnable:true
  | _ -> Alcotest.fail "select");
  Svr4.second_tick t;
  check_int "no boost after 1 tick" 29 (Svr4.prio_of t ~id:2);
  Svr4.second_tick t;
  check_int "no boost after 2 ticks" 29 (Svr4.prio_of t ~id:2);
  Svr4.second_tick t;
  check_int "boosted after exceeding maxwait" 54 (Svr4.prio_of t ~id:2)

let test_svr4_table_round_trip () =
  let t = Svr4.default_table () in
  match Svr4.table_of_string (Svr4.table_to_string t) with
  | Ok t' -> check_bool "round trip" true (t = t')
  | Error e -> Alcotest.failf "round trip failed: %s" e

let test_svr4_table_parse_errors () =
  let expect_error what text =
    match Svr4.table_of_string text with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
    | Error _ -> ()
  in
  expect_error "too few rows" "10 0 50 0 50\n";
  expect_error "bad arity" (String.concat "" (List.init 60 (fun _ -> "1 2 3\n")));
  expect_error "non-integers" (String.concat "" (List.init 60 (fun _ -> "a b c d e\n")));
  expect_error "priority out of range"
    (String.concat "" (List.init 60 (fun _ -> "10 0 99 0 50\n")));
  expect_error "zero quantum"
    (String.concat "" (List.init 60 (fun _ -> "0 0 50 0 50\n")));
  (* Comments and blank lines are fine. *)
  let good =
    "# header\n\n" ^ String.concat "" (List.init 60 (fun _ -> "10 0 50 0 50 # row\n"))
  in
  match Svr4.table_of_string good with
  | Ok t -> check_int "parsed rows" 60 (Array.length t)
  | Error e -> Alcotest.failf "should parse: %s" e

(* --------------------------- keyed heap ------------------------------- *)

let test_keyed_heap_lazy_invalidation () =
  let h = Keyed_heap.create () in
  let gens = Hashtbl.create 4 in
  let push id key =
    let g = 1 + Option.value ~default:0 (Hashtbl.find_opt gens id) in
    Hashtbl.replace gens id g;
    Keyed_heap.push h ~key ~gen:g ~id
  in
  let valid ~id ~gen = Hashtbl.find_opt gens id = Some gen in
  push 1 5.;
  push 2 3.;
  push 1 1.; (* re-keys client 1; the old (5.) entry is now stale *)
  (match Keyed_heap.pop h ~valid with
  | Some (k, 1) -> Alcotest.(check (float 1e-9)) "fresh key" 1. k
  | _ -> Alcotest.fail "expected client 1 at key 1");
  (match Keyed_heap.pop h ~valid with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "expected client 2");
  (* Only the stale entry remains. *)
  Alcotest.(check (option (pair (float 0.) int))) "stale entry skipped" None
    (Keyed_heap.pop h ~valid)

let test_keyed_heap_fifo_ties () =
  let h = Keyed_heap.create () in
  Keyed_heap.push h ~key:7. ~gen:0 ~id:10;
  Keyed_heap.push h ~key:7. ~gen:0 ~id:20;
  let valid ~id:_ ~gen:_ = true in
  (match Keyed_heap.peek h ~valid with
  | Some (_, 10) -> ()
  | _ -> Alcotest.fail "FIFO tie: first push wins");
  (match Keyed_heap.pop h ~valid with Some (_, 10) -> () | _ -> Alcotest.fail "pop 10");
  match Keyed_heap.pop h ~valid with Some (_, 20) -> () | _ -> Alcotest.fail "pop 20"

(* Lazy deletion's backstop: once reported-stale entries outnumber live
   ones (and the heap is non-trivially sized), the next push compacts in
   place — and the survivors still pop in exact key order. *)
let test_keyed_heap_compaction () =
  let h = Keyed_heap.create () in
  let live = Hashtbl.create 16 in
  Keyed_heap.set_validator h (fun ~id ~gen ->
      Hashtbl.find_opt live id = Some gen);
  for id = 0 to 99 do
    Hashtbl.replace live id 1;
    Keyed_heap.push h ~key:(float_of_int id) ~gen:1 ~id
  done;
  check_int "size before" 100 (Keyed_heap.size h);
  for id = 10 to 99 do
    Hashtbl.remove live id;
    Keyed_heap.invalidate h
  done;
  check_int "stale reported" 90 (Keyed_heap.stale_bound h);
  (* 2 * 90 > 100 and size >= 64: this push must compact first. *)
  Hashtbl.replace live 100 1;
  Keyed_heap.push h ~key:100.5 ~gen:1 ~id:100;
  check_int "compacted down to live entries" 11 (Keyed_heap.size h);
  check_int "stale counter reset" 0 (Keyed_heap.stale_bound h);
  for id = 0 to 9 do
    check_int "pop order after compaction" id (Keyed_heap.pop_valid h);
    Alcotest.(check (float 1e-9))
      "popped key" (float_of_int id) (Keyed_heap.last_key h)
  done;
  check_int "late pushed entry survives" 100 (Keyed_heap.pop_valid h);
  check_int "drained" (-1) (Keyed_heap.pop_valid h)

(* A heap drained far below its high-water mark must release the backing
   arrays (the same quarter-occupancy trigger as compaction, checked on
   pops too), and the survivors must still pop in exact key order through
   the shrunk store. *)
let test_keyed_heap_capacity_release () =
  let h = Keyed_heap.create () in
  Keyed_heap.set_validator h (fun ~id:_ ~gen:_ -> true);
  for id = 0 to 2047 do
    Keyed_heap.push h ~key:(float_of_int id) ~gen:1 ~id
  done;
  let cap_full = Keyed_heap.capacity h in
  check_bool "capacity covers the burst" true (cap_full >= 2048);
  for expect = 0 to 2047 - 100 do
    check_int "drain order" expect (Keyed_heap.pop_valid h)
  done;
  check_int "live entries" 100 (Keyed_heap.size h);
  check_bool "capacity released" true (Keyed_heap.capacity h < cap_full);
  check_bool "capacity covers survivors" true
    (Keyed_heap.capacity h >= Keyed_heap.size h);
  for expect = 2047 - 99 to 2047 do
    check_int "survivors in key order" expect (Keyed_heap.pop_valid h)
  done;
  check_int "drained" (-1) (Keyed_heap.pop_valid h)

(* remap_ids: rewriting queued ids through an old->new map (the owner's
   compaction move) must preserve keys, heap order and FIFO tie-breaks
   exactly; ids outside the map or mapped negative are untouched. *)
let test_keyed_heap_remap_preserves_order () =
  let pop_all h =
    let out = ref [] in
    let rec go () =
      match Keyed_heap.pop h ~valid:(fun ~id:_ ~gen:_ -> true) with
      | Some (k, id) ->
        out := (k, id) :: !out;
        go ()
      | None -> List.rev !out
    in
    go ()
  in
  let keys = [| 4.; 1.; 3.; 1.; 2.; 1.; 4.; 0.5 |] in
  let fill () =
    let h = Keyed_heap.create () in
    Array.iteri (fun id key -> Keyed_heap.push h ~key ~gen:0 ~id) keys;
    h
  in
  let baseline = pop_all (fill ()) in
  let remapped = fill () in
  (* Even ids move to id + 100; odd ids are left alone (map = -1), and
     id 7's slot is outside the map entirely. *)
  let map = Array.init 7 (fun i -> if i mod 2 = 0 then i + 100 else -1) in
  Keyed_heap.remap_ids remapped map;
  let expected =
    List.map
      (fun (k, id) -> (k, if id < 7 && id mod 2 = 0 then id + 100 else id))
      baseline
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "same keys and order, ids rewritten" expected (pop_all remapped)

(* ------------------------ interrupt sources --------------------------- *)

let test_interrupt_source_math () =
  let open Hsfq_kernel.Interrupt_source in
  let p = Periodic { period = Hsfq_engine.Time.milliseconds 10; cost = Hsfq_engine.Time.microseconds 100 } in
  Alcotest.(check (float 1e-9)) "periodic utilization" 0.01 (utilization p);
  check_int "periodic burstiness = cost" (Hsfq_engine.Time.microseconds 100) (fc_burstiness p);
  let q = Poisson { rate_hz = 100.; mean_cost = Hsfq_engine.Time.microseconds 500; seed = 1 } in
  Alcotest.(check (float 1e-9)) "poisson utilization" 0.05 (utilization q);
  check_bool "poisson burstiness envelope > periodic" true
    (fc_burstiness q > Hsfq_engine.Time.microseconds 500)

let test_interrupt_source_fires () =
  let open Hsfq_engine in
  let sim = Sim.create () in
  let count = ref 0 and total = ref 0 in
  Hsfq_kernel.Interrupt_source.start
    (Hsfq_kernel.Interrupt_source.Periodic
       { period = Time.milliseconds 10; cost = Time.microseconds 200 })
    ~sim
    ~fire:(fun ~duration ->
      incr count;
      total := !total + duration);
  Sim.run_until sim (Time.milliseconds 100);
  check_int "ten arrivals in 100 ms" 10 !count;
  check_int "costs accumulate" (Time.milliseconds 2) !total

(* ----------------------- max-min fairness oracle ---------------------- *)

module MM = Hsfq_check.Maxmin

let mm_ok ~capacity t rates =
  match MM.check ~capacity t ~rates with
  | Ok () -> ()
  | Error e -> Alcotest.failf "max-min criteria violated: %s" e

let test_maxmin_hand_examples () =
  (* No saturation: pure weight proportion. *)
  let t =
    MM.group ~weight:1.
      [ MM.leaf ~weight:1. ~demand:10. (); MM.leaf ~weight:3. ~demand:10. () ]
  in
  let r = MM.allocate ~capacity:4. t in
  check_float "1:3 light" 1. r.(0);
  check_float "1:3 heavy" 3. r.(1);
  mm_ok ~capacity:4. t r;
  (* A saturated sibling's surplus is redistributed. *)
  let t =
    MM.group ~weight:1.
      [ MM.leaf ~weight:1. ~demand:0.5 (); MM.leaf ~weight:1. ~demand:10. () ]
  in
  let r = MM.allocate ~capacity:2. t in
  check_float "saturated gets its demand" 0.5 r.(0);
  check_float "sibling absorbs the surplus" 1.5 r.(1);
  mm_ok ~capacity:2. t r;
  (* The per-subtree 1-CPU cap (the root claim discipline): at capacity
     8 every capped class gets exactly one CPU, whatever its weight. *)
  let t =
    MM.group ~weight:1.
      (List.init 8 (fun i ->
           MM.leaf ~cap:1.
             ~weight:(float_of_int (1 + (i mod 4)))
             ~demand:1. ()))
  in
  let r = MM.allocate ~capacity:8. t in
  Array.iter (fun x -> check_float "cap binds" 1. x) r;
  mm_ok ~capacity:8. t r;
  (* Hierarchical: a cap on the group, not its leaves. *)
  let t =
    MM.group ~weight:1.
      [
        MM.group ~cap:1. ~weight:4.
          [ MM.leaf ~weight:1. ~demand:2. (); MM.leaf ~weight:1. ~demand:2. () ];
        MM.leaf ~weight:1. ~demand:4. ();
      ]
  in
  let r = MM.allocate ~capacity:3. t in
  check_float "capped group leaf a" 0.5 r.(0);
  check_float "capped group leaf b" 0.5 r.(1);
  check_float "uncapped sibling takes the rest" 2. r.(2);
  mm_ok ~capacity:3. t r

(* The checker is independent of the allocator: it must reject vectors
   that merely sum correctly but violate the bottleneck condition or
   work conservation. *)
let test_maxmin_check_rejects () =
  let t =
    MM.group ~weight:1.
      [ MM.leaf ~weight:1. ~demand:10. (); MM.leaf ~weight:1. ~demand:10. () ]
  in
  (match MM.check ~capacity:2. t ~rates:[| 1.5; 0.5 |] with
  | Ok () -> Alcotest.fail "unbalanced vector accepted"
  | Error _ -> ());
  (match MM.check ~capacity:2. t ~rates:[| 0.5; 0.5 |] with
  | Ok () -> Alcotest.fail "non-work-conserving vector accepted"
  | Error _ -> ());
  (match MM.check ~capacity:2. t ~rates:[| 1. |] with
  | Ok () -> Alcotest.fail "short vector accepted"
  | Error _ -> ());
  mm_ok ~capacity:2. t [| 1.; 1. |]

(* 10^5 leaves: the O(k log k) water-filling pass and the O(n) checker
   must agree at the million-client scale the structures target. *)
let test_maxmin_large_tree () =
  let groups = 100 and per = 1000 in
  let t =
    MM.group ~weight:1.
      (List.init groups (fun g ->
           MM.group
             ~weight:(float_of_int (1 + (g mod 7)))
             (List.init per (fun i ->
                  MM.leaf
                    ~weight:(float_of_int (1 + (i mod 5)))
                    ~demand:(float_of_int (i mod 3) /. 2.)
                    ()))))
  in
  let r = MM.allocate ~capacity:64. t in
  check_int "one rate per leaf" (groups * per) (Array.length r);
  check_bool "within capacity" true (MM.total r <= 64. +. 1e-6);
  mm_ok ~capacity:64. t r

let maxmin_tree_gen =
  let open QCheck.Gen in
  let weight = map (fun i -> float_of_int i /. 4.) (int_range 1 40) in
  let demand = map (fun i -> float_of_int i /. 8.) (int_range 0 80) in
  let cap =
    frequency
      [
        (3, return infinity);
        (1, map (fun i -> float_of_int i /. 4.) (int_range 1 20));
      ]
  in
  let leaf_g =
    map3 (fun w d c -> MM.leaf ~cap:c ~weight:w ~demand:d ()) weight demand cap
  in
  let rec node depth =
    if depth = 0 then leaf_g
    else
      frequency
        [
          (1, leaf_g);
          ( 2,
            int_range 1 6 >>= fun n ->
            list_repeat n (node (depth - 1)) >>= fun ch ->
            map2 (fun w c -> MM.group ~cap:c ~weight:w ch) weight cap );
        ]
  in
  node 3

let prop_maxmin_allocate_passes_check =
  QCheck.Test.make ~name:"maxmin: allocate satisfies the max-min criteria"
    ~count:200
    QCheck.(make Gen.(pair maxmin_tree_gen (int_range 0 64)))
    (fun (tree, cap4) ->
      let capacity = float_of_int cap4 /. 4. in
      let r = MM.allocate ~capacity tree in
      match MM.check ~capacity tree ~rates:r with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "capacity %g: %s" capacity e)

(* Wide two-level trees at Q = 10^4 leaves, seeded deterministically. *)
let prop_maxmin_wide_trees =
  QCheck.Test.make ~name:"maxmin: 10^4-leaf wide trees pass" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t =
        MM.group ~weight:1.
          (List.init 100 (fun g ->
               MM.group
                 ~weight:(float_of_int (1 + ((g + seed) mod 9)))
                 (List.init 100 (fun i ->
                      MM.leaf
                        ~weight:(float_of_int (1 + ((i * 7) + seed) mod 6))
                        ~demand:(float_of_int (((i + (g * 3) + seed) mod 16)) /. 4.)
                        ()))))
      in
      let capacity = float_of_int (1 + (seed mod 128)) in
      match MM.check ~capacity t ~rates:(MM.allocate ~capacity t) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "seed %d: %s" seed e)

(* The oracle against the real thing: singleton backlogged classes under
   the root on a P-CPU kernel; observed service shares must track the
   hierarchical max-min allocation with the per-subtree 1-CPU cap. *)
let smp_observed_shares ~cpus ~weights ~seconds =
  let open Hsfq_engine in
  let open Hsfq_kernel in
  let sim = Sim.create () in
  let hier = Hsfq_core.Hierarchy.create () in
  let k = Kernel.create ~cpus sim hier in
  let tids =
    List.mapi
      (fun i w ->
        let leaf =
          match
            Hsfq_core.Hierarchy.mknod hier
              ~name:(Printf.sprintf "c%d" i)
              ~parent:Hsfq_core.Hierarchy.root ~weight:w Hsfq_core.Hierarchy.Leaf
          with
          | Ok id -> id
          | Error e -> failwith e
        in
        let lf, sfq = Leaf_sched.Sfq_leaf.make () in
        Kernel.install_leaf k leaf lf;
        let tid =
          Kernel.spawn k
            ~name:(Printf.sprintf "t%d" i)
            ~leaf
            (Workload_intf.forever_compute (Time.seconds 10))
        in
        Leaf_sched.Sfq_leaf.add sfq ~tid ~weight:1.;
        Kernel.start k tid;
        tid)
      weights
  in
  Kernel.run_until k (Time.seconds seconds);
  let service = List.map (fun tid -> float_of_int (Kernel.cpu_time k tid)) tids in
  let total = List.fold_left ( +. ) 0. service in
  List.map (fun s -> s /. total) service

let prop_maxmin_matches_smp_dispatch =
  QCheck.Test.make ~name:"maxmin: P>1 dispatch tracks the capped oracle"
    ~count:6
    QCheck.(
      pair (oneofl [ 2; 4 ]) (list_of_size Gen.(int_range 4 6) (int_range 1 4)))
    (fun (cpus, ws) ->
      (* The shrinker walks weights toward 0 and the list toward empty;
         both leave the scenario's domain. *)
      QCheck.assume (List.length ws >= cpus && List.for_all (fun w -> w > 0) ws);
      let weights = List.map float_of_int ws in
      let shares = smp_observed_shares ~cpus ~weights ~seconds:2 in
      let tree =
        MM.group ~weight:1.
          (List.map (fun w -> MM.leaf ~cap:1. ~weight:w ~demand:1. ()) weights)
      in
      let rates = MM.allocate ~capacity:(float_of_int cpus) tree in
      let total = MM.total rates in
      List.for_all2
        (fun s r ->
          let expect = r /. total in
          if Float.abs (s -. expect) < 0.05 then true
          else
            QCheck.Test.fail_reportf
              "cpus=%d weights=[%s]: share %.3f vs oracle %.3f" cpus
              (String.concat ";" (List.map string_of_int ws))
              s expect)
        shares (Array.to_list rates))

(* ----------------------------- runner -------------------------------- *)

let () =
  Alcotest.run "sched"
    [
      ("wfq battery", fair_battery "wfq" (module Wfq));
      ("scfq battery", fair_battery "scfq" (module Scfq));
      ("fqs battery", fair_battery "fqs" (module Fqs));
      ("stride battery", fair_battery "stride" (module Stride));
      ("lottery battery", fair_battery "lottery" (module Lottery));
      ("eevdf battery", fair_battery "eevdf" (module Eevdf));
      ("round-robin battery", fair_battery "rr" (module Round_robin));
      ("fifo battery", fair_battery "fifo" (module Fifo_sched));
      ( "proportionality",
        [
          Alcotest.test_case "wfq 1:3" `Quick
            (test_proportional "wfq" (module Wfq) ~tol:0.05);
          Alcotest.test_case "scfq 1:3" `Quick
            (test_proportional "scfq" (module Scfq) ~tol:0.05);
          Alcotest.test_case "fqs 1:3" `Quick
            (test_proportional "fqs" (module Fqs) ~tol:0.05);
          Alcotest.test_case "stride 1:3" `Quick
            (test_proportional "stride" (module Stride) ~tol:0.05);
          Alcotest.test_case "eevdf 1:3" `Quick
            (test_proportional "eevdf" (module Eevdf) ~tol:0.05);
        ] );
      ( "algorithm specifics",
        [
          Alcotest.test_case "wfq overcharges early blockers" `Quick
            test_wfq_overcharges_short_quanta;
          Alcotest.test_case "fqs charges actual lengths" `Quick
            test_fqs_charges_actual_length;
          Alcotest.test_case "scfq virtual time" `Quick
            test_scfq_virtual_time_is_finish_tag;
          Alcotest.test_case "stride deterministic sequence" `Quick
            test_stride_deterministic_sequence;
          Alcotest.test_case "stride remain across sleep" `Quick
            test_stride_remain_preserved;
          Alcotest.test_case "lottery statistical ratio" `Slow
            test_lottery_statistical_ratio;
          Alcotest.test_case "lottery seed determinism" `Quick
            test_lottery_deterministic_under_seed;
          Alcotest.test_case "eevdf eligibility gating" `Quick test_eevdf_eligibility;
          Alcotest.test_case "round robin ignores weights" `Quick
            test_round_robin_ignores_weights;
          Alcotest.test_case "fifo run to completion" `Quick
            test_fifo_runs_to_completion;
        ] );
      ( "gps-rt-clock",
        [
          Alcotest.test_case "wall-clock virtual time" `Quick
            test_gps_vt_advances_with_wall_time;
          Alcotest.test_case "fair at full capacity" `Quick
            test_gps_vt_proportional_at_full_capacity;
          Alcotest.test_case "unfair at reduced capacity" `Quick
            test_gps_vt_unfair_at_reduced_capacity;
          Alcotest.test_case "administration" `Quick test_gps_vt_admin;
        ] );
      ( "edf",
        [
          Alcotest.test_case "deadline ordering" `Quick test_edf_ordering;
          Alcotest.test_case "re-release updates deadline" `Quick
            test_edf_rerelease_updates;
          Alcotest.test_case "FIFO ties" `Quick test_edf_fifo_ties;
        ] );
      ( "rm",
        [
          Alcotest.test_case "priority by period" `Quick test_rm_priority_order;
          Alcotest.test_case "registration-order ties" `Quick
            test_rm_tie_by_registration;
          Alcotest.test_case "unregister" `Quick test_rm_unregister;
        ] );
      ( "keyed-heap",
        [
          Alcotest.test_case "lazy invalidation" `Quick
            test_keyed_heap_lazy_invalidation;
          Alcotest.test_case "FIFO ties" `Quick test_keyed_heap_fifo_ties;
          Alcotest.test_case "stale-majority compaction" `Quick
            test_keyed_heap_compaction;
          Alcotest.test_case "capacity release on drain" `Quick
            test_keyed_heap_capacity_release;
          Alcotest.test_case "remap_ids preserves order" `Quick
            test_keyed_heap_remap_preserves_order;
        ] );
      ( "interrupt-source",
        [
          Alcotest.test_case "utilization and burstiness" `Quick
            test_interrupt_source_math;
          Alcotest.test_case "periodic generation" `Quick test_interrupt_source_fires;
        ] );
      ( "maxmin oracle",
        [
          Alcotest.test_case "hand examples" `Quick test_maxmin_hand_examples;
          Alcotest.test_case "checker rejects wrong vectors" `Quick
            test_maxmin_check_rejects;
          Alcotest.test_case "10^5-leaf tree" `Quick test_maxmin_large_tree;
          QCheck_alcotest.to_alcotest prop_maxmin_allocate_passes_check;
          QCheck_alcotest.to_alcotest prop_maxmin_wide_trees;
          QCheck_alcotest.to_alcotest prop_maxmin_matches_smp_dispatch;
        ] );
      ( "svr4",
        [
          Alcotest.test_case "quantum expiry demotes (tqexp)" `Quick
            test_svr4_ts_quantum_expiry_demotes;
          Alcotest.test_case "partial use keeps priority" `Quick
            test_svr4_partial_use_keeps_priority;
          Alcotest.test_case "sleep-return boost (slpret)" `Quick
            test_svr4_sleep_return_boost;
          Alcotest.test_case "admission wake without boost" `Quick
            test_svr4_wake_without_boost;
          Alcotest.test_case "starvation boost (maxwait/lwait)" `Quick
            test_svr4_starvation_boost;
          Alcotest.test_case "tick accounting overcharges" `Quick
            test_svr4_tick_accounting_overcharges;
          Alcotest.test_case "exact accounting does not" `Quick
            test_svr4_exact_accounting;
          Alcotest.test_case "RT above TS, priority order" `Quick test_svr4_rt_above_ts;
          Alcotest.test_case "RT FIFO within a priority" `Quick
            test_svr4_rt_fifo_within_priority;
          Alcotest.test_case "remove and errors" `Quick test_svr4_remove_and_errors;
          Alcotest.test_case "dispatch table shape" `Quick
            test_svr4_default_table_shape;
          Alcotest.test_case "custom maxwait threshold" `Quick
            test_svr4_custom_maxwait;
          Alcotest.test_case "table text round trip" `Quick
            test_svr4_table_round_trip;
          Alcotest.test_case "table parse errors" `Quick
            test_svr4_table_parse_errors;
        ] );
    ]
