(* Tests for the packet-link substrate (lib/netsim). *)

open Hsfq_engine
open Hsfq_netsim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let mbps x = x *. 1e6

let test_single_flow_fifo () =
  let sim = Sim.create () in
  (* 1 Mb/s: a 1000-bit packet takes exactly 1 ms. *)
  let link = Link.create ~sim ~rate_bps:(mbps 1.) () in
  Link.add_flow link ~id:1 ~weight:1.;
  Link.enqueue link ~flow:1 ~bits:1000;
  Link.enqueue link ~flow:1 ~bits:2000;
  check_bool "transmitting" true (Link.busy link);
  check_int "second packet queued" 1 (Link.queue_length link ~flow:1);
  Sim.run_until sim (Time.milliseconds 10);
  check_bool "drained" false (Link.busy link);
  check_float "all bits delivered" 3000. (Link.delivered_bits link ~flow:1);
  let delays = Link.delays link ~flow:1 in
  check_int "two packets" 2 (Array.length delays);
  (* First: 1 ms transmission; second: waits 1 ms then 2 ms on the wire. *)
  check_float "first delay" (float_of_int (Time.milliseconds 1)) delays.(0);
  check_float "second delay" (float_of_int (Time.milliseconds 3)) delays.(1)

let test_weighted_sharing_under_backlog () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 10.) ~queue_cap:100_000 () in
  Link.add_flow link ~id:1 ~weight:1.;
  Link.add_flow link ~id:2 ~weight:3.;
  (* Both flows heavily backlogged with equal-size packets. *)
  for _ = 1 to 5000 do
    Link.enqueue link ~flow:1 ~bits:10_000;
    Link.enqueue link ~flow:2 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 2);
  let d1 = Link.delivered_bits link ~flow:1 and d2 = Link.delivered_bits link ~flow:2 in
  check_bool "1:3 split" true (Float.abs ((d2 /. d1) -. 3.) < 0.05);
  (* Work conservation: the link moved ~20 Mb in 2 s. *)
  check_bool "link saturated" true (d1 +. d2 > 0.99 *. mbps 20.)

let test_work_conservation_residual () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 10.) ~queue_cap:100_000 () in
  Link.add_flow link ~id:1 ~weight:9.;
  Link.add_flow link ~id:2 ~weight:1.;
  (* Only flow 2 has traffic: it gets the whole link despite weight 1. *)
  for _ = 1 to 2000 do
    Link.enqueue link ~flow:2 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 2);
  check_float "idle weights don't reserve" (2e7) (Link.delivered_bits link ~flow:2)

let test_drops_at_queue_cap () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 1.) ~queue_cap:5 () in
  Link.add_flow link ~id:1 ~weight:1.;
  (* One transmitting + 5 queued; the rest drop. *)
  for _ = 1 to 10 do
    Link.enqueue link ~flow:1 ~bits:1000
  done;
  check_int "drops counted" 4 (Link.drops link ~flow:1);
  Sim.run_until sim (Time.seconds 1);
  check_float "six delivered" 6000. (Link.delivered_bits link ~flow:1)

let test_flow_goes_idle_and_returns () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 1.) () in
  Link.add_flow link ~id:1 ~weight:1.;
  Link.enqueue link ~flow:1 ~bits:1000;
  Sim.run_until sim (Time.milliseconds 50);
  check_bool "idle after draining" false (Link.busy link);
  Link.enqueue link ~flow:1 ~bits:1000;
  Sim.run_until sim (Time.milliseconds 100);
  check_float "second burst served" 2000. (Link.delivered_bits link ~flow:1)

let test_errors () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 1.) () in
  Link.add_flow link ~id:1 ~weight:1.;
  Alcotest.check_raises "duplicate flow" (Invalid_argument "Link.add_flow: duplicate flow")
    (fun () -> Link.add_flow link ~id:1 ~weight:2.);
  Alcotest.check_raises "unknown flow" (Invalid_argument "Link: unknown flow 9")
    (fun () -> Link.enqueue link ~flow:9 ~bits:100);
  Alcotest.check_raises "bad size" (Invalid_argument "Link.enqueue: bits <= 0")
    (fun () -> Link.enqueue link ~flow:1 ~bits:0);
  Alcotest.(check string) "default scheduler" "sfq" (Link.scheduler_name link)

let test_cbr_arrivals () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 10.) () in
  Link.add_flow link ~id:1 ~weight:1.;
  (* 64 kb/s of 1280-bit packets: one per 20 ms; 50 in a second. *)
  Traffic.cbr link ~sim ~flow:1 ~rate_bps:64e3 ~packet_bits:1280 ();
  Sim.run_until sim (Time.seconds 1);
  check_int "one packet per 20 ms" 50 (Stats.count (Link.delay_stats link ~flow:1));
  (* The link is fast: each packet goes out immediately (128 us). *)
  check_float "uncontended delay = transmission time" 128_000.
    (Stats.max_value (Link.delay_stats link ~flow:1))

let test_poisson_deterministic () =
  let run () =
    let sim = Sim.create () in
    let link = Link.create ~sim ~rate_bps:(mbps 10.) () in
    Link.add_flow link ~id:1 ~weight:1.;
    Traffic.poisson link ~sim ~flow:1 ~rate_bps:1e6 ~mean_packet_bits:8000 ~seed:5 ();
    Sim.run_until sim (Time.seconds 2);
    Link.delivered_bits link ~flow:1
  in
  check_float "same seed, same traffic" (run ()) (run ());
  let total = run () in
  check_bool "~1 Mb/s demand delivered" true
    (Float.abs ((total /. 2.) -. 1e6) /. 1e6 < 0.15)

let test_video_sizes_follow_frames () =
  let sim = Sim.create () in
  let link = Link.create ~sim ~rate_bps:(mbps 100.) ~queue_cap:100_000 () in
  Link.add_flow link ~id:1 ~weight:1.;
  Traffic.video link ~sim ~flow:1 ~params:Hsfq_workload.Mpeg.default_params
    ~bits_per_cost_ms:1000. ();
  Sim.run_until sim (Time.seconds 2);
  let sizes = Array.map (fun (_, _, b) -> b) (Link.completions link ~flow:1) in
  check_int "30 fps for 2 s" 60 (Array.length sizes);
  (* VBR: sizes vary by at least 2x between smallest and largest. *)
  let lo = Array.fold_left Float.min infinity sizes in
  let hi = Array.fold_left Float.max 0. sizes in
  check_bool "variable bit rate" true (hi > 2. *. lo)

(* --------------------------- hierarchical link ------------------------ *)

let test_hlink_class_shares () =
  let sim = Sim.create () in
  let hl = Hlink.create ~sim ~rate_bps:(mbps 10.) ~queue_cap:100_000 () in
  let h = Hlink.hierarchy hl in
  let mk name w =
    match Hsfq_core.Hierarchy.mknod h ~name ~parent:Hsfq_core.Hierarchy.root
            ~weight:w Hsfq_core.Hierarchy.Leaf with
    | Ok id -> id
    | Error e -> failwith e
  in
  let video = mk "video" 3. and data = mk "data" 1. in
  Hlink.attach_flow hl ~leaf:video ~flow:1 ~weight:1.;
  Hlink.attach_flow hl ~leaf:data ~flow:2 ~weight:1.;
  Hlink.attach_flow hl ~leaf:data ~flow:3 ~weight:1.;
  for _ = 1 to 5000 do
    Hlink.enqueue hl ~flow:1 ~bits:10_000;
    Hlink.enqueue hl ~flow:2 ~bits:10_000;
    Hlink.enqueue hl ~flow:3 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 2);
  let v = Hlink.class_delivered_bits hl video in
  let d = Hlink.class_delivered_bits hl data in
  check_bool "classes split 3:1" true (Float.abs ((v /. d) -. 3.) < 0.05);
  (* Within /data, the two flows share equally. *)
  let d2 = Hlink.delivered_bits hl ~flow:2 and d3 = Hlink.delivered_bits hl ~flow:3 in
  check_bool "intra-class equal" true (Float.abs ((d2 /. d3) -. 1.) < 0.05);
  check_bool "link saturated" true (v +. d > 0.99 *. mbps 20.)

let test_hlink_residual_to_active_class () =
  let sim = Sim.create () in
  let hl = Hlink.create ~sim ~rate_bps:(mbps 10.) ~queue_cap:100_000 () in
  let h = Hlink.hierarchy hl in
  let mk name w =
    match Hsfq_core.Hierarchy.mknod h ~name ~parent:Hsfq_core.Hierarchy.root
            ~weight:w Hsfq_core.Hierarchy.Leaf with
    | Ok id -> id
    | Error e -> failwith e
  in
  let video = mk "video" 9. and data = mk "data" 1. in
  ignore video;
  Hlink.attach_flow hl ~leaf:data ~flow:1 ~weight:1.;
  for _ = 1 to 3000 do
    Hlink.enqueue hl ~flow:1 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 2);
  check_float "idle class's bandwidth redistributed" 2e7
    (Hlink.delivered_bits hl ~flow:1)

let test_hlink_weight_change_under_backlog () =
  (* hsfq_setweight on a live link: two continuously backlogged classes
     share 1:1, then /video is re-weighted to 3 mid-run — the delivery
     ratio over the window after the change must track the new weights
     while the totals keep the pre-change history. *)
  let sim = Sim.create () in
  let hl = Hlink.create ~sim ~rate_bps:(mbps 10.) ~queue_cap:200_000 () in
  let h = Hlink.hierarchy hl in
  let mk name w =
    match Hsfq_core.Hierarchy.mknod h ~name ~parent:Hsfq_core.Hierarchy.root
            ~weight:w Hsfq_core.Hierarchy.Leaf with
    | Ok id -> id
    | Error e -> failwith e
  in
  let video = mk "video" 1. and data = mk "data" 1. in
  Hlink.attach_flow hl ~leaf:video ~flow:1 ~weight:1.;
  Hlink.attach_flow hl ~leaf:data ~flow:2 ~weight:1.;
  for _ = 1 to 10_000 do
    Hlink.enqueue hl ~flow:1 ~bits:10_000;
    Hlink.enqueue hl ~flow:2 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 1);
  let v1 = Hlink.class_delivered_bits hl video in
  let d1 = Hlink.class_delivered_bits hl data in
  check_bool "1:1 before the change" true (Float.abs ((v1 /. d1) -. 1.) < 0.05);
  Hsfq_core.Hierarchy.set_weight h video 3.;
  Sim.run_until sim (Time.seconds 2);
  let dv = Hlink.class_delivered_bits hl video -. v1 in
  let dd = Hlink.class_delivered_bits hl data -. d1 in
  check_bool "3:1 after the change" true (Float.abs ((dv /. dd) -. 3.) < 0.05);
  check_bool "still work-conserving" true
    (dv +. dd > 0.99 *. mbps 10.)

let test_hlink_errors () =
  let sim = Sim.create () in
  let hl = Hlink.create ~sim ~rate_bps:(mbps 1.) () in
  let h = Hlink.hierarchy hl in
  let leaf =
    match Hsfq_core.Hierarchy.mknod h ~name:"l" ~parent:Hsfq_core.Hierarchy.root
            ~weight:1. Hsfq_core.Hierarchy.Leaf with
    | Ok id -> id
    | Error e -> failwith e
  in
  Hlink.attach_flow hl ~leaf ~flow:1 ~weight:1.;
  Alcotest.check_raises "duplicate flow"
    (Invalid_argument "Hlink.attach_flow: duplicate flow") (fun () ->
      Hlink.attach_flow hl ~leaf ~flow:1 ~weight:1.);
  Alcotest.check_raises "internal node"
    (Invalid_argument "Hlink: node is not a leaf class") (fun () ->
      Hlink.attach_flow hl ~leaf:Hsfq_core.Hierarchy.root ~flow:2 ~weight:1.)

let test_hlink_two_level_tree () =
  (* root -> gold (w=3) | silver (w=1, internal) -> s1 (w=1) | s2 (w=1):
     shares 75 / 12.5 / 12.5 when all backlogged. *)
  let sim = Sim.create () in
  let hl = Hlink.create ~sim ~rate_bps:(mbps 8.) ~queue_cap:100_000 () in
  let h = Hlink.hierarchy hl in
  let ok = function Ok v -> v | Error e -> failwith e in
  let gold = ok (Hsfq_core.Hierarchy.mknod h ~name:"gold" ~parent:Hsfq_core.Hierarchy.root ~weight:3. Hsfq_core.Hierarchy.Leaf) in
  let silver = ok (Hsfq_core.Hierarchy.mknod h ~name:"silver" ~parent:Hsfq_core.Hierarchy.root ~weight:1. Hsfq_core.Hierarchy.Internal) in
  let s1 = ok (Hsfq_core.Hierarchy.mknod h ~name:"s1" ~parent:silver ~weight:1. Hsfq_core.Hierarchy.Leaf) in
  let s2 = ok (Hsfq_core.Hierarchy.mknod h ~name:"s2" ~parent:silver ~weight:1. Hsfq_core.Hierarchy.Leaf) in
  Hlink.attach_flow hl ~leaf:gold ~flow:1 ~weight:1.;
  Hlink.attach_flow hl ~leaf:s1 ~flow:2 ~weight:1.;
  Hlink.attach_flow hl ~leaf:s2 ~flow:3 ~weight:1.;
  for _ = 1 to 4000 do
    Hlink.enqueue hl ~flow:1 ~bits:10_000;
    Hlink.enqueue hl ~flow:2 ~bits:10_000;
    Hlink.enqueue hl ~flow:3 ~bits:10_000
  done;
  Sim.run_until sim (Time.seconds 2);
  let total = mbps 8. *. 2. in
  let frac flow = Hlink.delivered_bits hl ~flow /. total in
  check_bool "gold ~75%" true (Float.abs (frac 1 -. 0.75) < 0.01);
  check_bool "s1 ~12.5%" true (Float.abs (frac 2 -. 0.125) < 0.01);
  check_bool "s2 ~12.5%" true (Float.abs (frac 3 -. 0.125) < 0.01)

(* --------------------------- properties -------------------------------- *)

(* Under random backlogged traffic with random packet sizes, two flows'
   delivered bits must respect the SFQ fairness bound with lmax = each
   flow's largest packet. *)
let prop_link_fairness_bound =
  QCheck.Test.make ~name:"link service respects eq. 3 with packet lmax" ~count:60
    QCheck.(
      pair
        (pair (float_range 0.5 4.) (float_range 0.5 4.))
        (list_of_size (Gen.int_range 20 200) (pair (int_range 100 15_000) bool)))
    (fun ((w1, w2), packets) ->
      let sim = Sim.create () in
      let link = Link.create ~sim ~rate_bps:1e7 ~queue_cap:100_000 () in
      Link.add_flow link ~id:1 ~weight:w1;
      Link.add_flow link ~id:2 ~weight:w2;
      let lmax = [| 0.; 0. |] in
      List.iter
        (fun (bits, which) ->
          let flow = if which then 1 else 2 in
          lmax.(flow - 1) <- Float.max lmax.(flow - 1) (float_of_int bits);
          Link.enqueue link ~flow ~bits)
        packets;
      (* Run until both queues drain, then compare at every completion
         via the analysis metric over the delivered series. *)
      Sim.run_until sim (Time.seconds 60);
      if lmax.(0) = 0. || lmax.(1) = 0. then true
      else begin
        (* Both flows are backlogged only while both have queued packets;
           restrict the interval to the earlier drain point. *)
        let last_busy flow =
          match Series.last (Link.delivered_series link ~flow) with
          | Some (t, _) -> t
          | None -> 0
        in
        let until = Int.min (last_busy 1) (last_busy 2) in
        let lag =
          Hsfq_analysis.Fairness.normalized_lag
            ~fa:(Link.delivered_series link ~flow:1) ~wa:w1
            ~fb:(Link.delivered_series link ~flow:2) ~wb:w2 ~until
        in
        lag <= (lmax.(0) /. w1) +. (lmax.(1) /. w2) +. 1e-6
      end)

let prop_link_conservation =
  QCheck.Test.make ~name:"delivered bits never exceed rate * time" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 100 20_000))
    (fun sizes ->
      let sim = Sim.create () in
      let link = Link.create ~sim ~rate_bps:1e6 ~queue_cap:100_000 () in
      Link.add_flow link ~id:1 ~weight:1.;
      List.iter (fun bits -> Link.enqueue link ~flow:1 ~bits) sizes;
      let horizon = Time.milliseconds 50 in
      Sim.run_until sim horizon;
      let delivered = Link.delivered_bits link ~flow:1 in
      (* 1e6 b/s over 50 ms = 50 000 bits, plus one in-flight packet of
         rounding slack. *)
      delivered <= (1e6 *. 0.05) +. 20_000.)

let () =
  Alcotest.run "netsim"
    [
      ( "link",
        [
          Alcotest.test_case "single flow FIFO" `Quick test_single_flow_fifo;
          Alcotest.test_case "weighted sharing" `Quick
            test_weighted_sharing_under_backlog;
          Alcotest.test_case "residual to active flows" `Quick
            test_work_conservation_residual;
          Alcotest.test_case "drops at queue cap" `Quick test_drops_at_queue_cap;
          Alcotest.test_case "idle and return" `Quick test_flow_goes_idle_and_returns;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "CBR spacing" `Quick test_cbr_arrivals;
          Alcotest.test_case "poisson determinism" `Quick test_poisson_deterministic;
          Alcotest.test_case "VBR video sizes" `Quick test_video_sizes_follow_frames;
        ] );
      ( "hierarchical link",
        [
          Alcotest.test_case "class and intra-class shares" `Quick
            test_hlink_class_shares;
          Alcotest.test_case "residual redistribution" `Quick
            test_hlink_residual_to_active_class;
          Alcotest.test_case "weight change under backlog" `Quick
            test_hlink_weight_change_under_backlog;
          Alcotest.test_case "errors" `Quick test_hlink_errors;
          Alcotest.test_case "two-level tree shares" `Quick
            test_hlink_two_level_tree;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_link_fairness_bound;
          QCheck_alcotest.to_alcotest prop_link_conservation;
        ] );
    ]
