(* Unit and property tests for the simulation substrate (lib/engine). *)

open Hsfq_engine

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------------------- Time ---------------------------------- *)

let test_time_units () =
  check_int "us" 1_000 (Time.microseconds 1);
  check_int "ms" 1_000_000 (Time.milliseconds 1);
  check_int "s" 1_000_000_000 (Time.seconds 1);
  check_int "min" 60_000_000_000 (Time.minutes 1);
  check_int "of_seconds_float" 1_500_000_000 (Time.of_seconds_float 1.5);
  check_float "to_seconds" 0.02 (Time.to_seconds_float (Time.milliseconds 20));
  check_float "to_ms" 2.5 (Time.to_milliseconds_float (Time.microseconds 2500))

let test_time_arith () =
  let t = Time.add (Time.seconds 1) (Time.milliseconds 500) in
  check_int "add" 1_500_000_000 t;
  check_int "diff" (Time.milliseconds 500) (Time.diff t (Time.seconds 1));
  check_int "scale" (Time.milliseconds 10) (Time.scale (Time.milliseconds 20) 0.5);
  check_int "min" (Time.seconds 1) (Time.min (Time.seconds 1) (Time.seconds 2));
  check_int "max" (Time.seconds 2) (Time.max (Time.seconds 1) (Time.seconds 2))

let test_time_pp () =
  Alcotest.(check string) "ns" "5ns" (Time.to_string 5);
  Alcotest.(check string) "ms" "12ms" (Time.to_string (Time.milliseconds 12));
  Alcotest.(check string) "s" "3s" (Time.to_string (Time.seconds 3))

(* ---------------------------- Prng ---------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check_bool "different streams" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let c = Prng.split a in
  let x = Prng.next_int64 a and y = Prng.next_int64 c in
  check_bool "split streams differ" false (x = y)

let test_prng_copy () =
  let a = Prng.create 9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int r 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let f = Prng.float r 2.5 in
    check_bool "float in range" true (f >= 0. && f < 2.5);
    let i = Prng.int_in r (-5) 5 in
    check_bool "int_in range" true (i >= -5 && i <= 5)
  done

let test_prng_uniform_mean () =
  let r = Prng.create 4 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "uniform mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_exponential_mean () =
  let r = Prng.create 5 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exp mean ~ 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_prng_gaussian_moments () =
  let r = Prng.create 6 in
  let st = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add st (Prng.gaussian r ~mu:10. ~sigma:2.)
  done;
  check_bool "gaussian mean" true (Float.abs (Stats.mean st -. 10.) < 0.1);
  check_bool "gaussian sd" true (Float.abs (Stats.stddev st -. 2.) < 0.1)

let test_prng_bernoulli () =
  let r = Prng.create 8 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli r 0.3 then incr hits
  done;
  check_bool "bernoulli p=0.3" true
    (Float.abs ((float_of_int !hits /. 10_000.) -. 0.3) < 0.03)

let test_prng_pareto_and_choice () =
  let r = Prng.create 12 in
  for _ = 1 to 1000 do
    let v = Prng.pareto r ~shape:2. ~scale:3. in
    check_bool "pareto >= scale" true (v >= 3.)
  done;
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    check_bool "choice from array" true (Array.mem (Prng.choice r arr) arr)
  done

let test_prng_shuffle_permutes () =
  let r = Prng.create 10 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted;
  check_bool "actually shuffled" true (a <> Array.init 50 Fun.id)

let test_prng_stream_reproducible () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let sa = Prng.stream a 3 and sb = Prng.stream b 3 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same (t, i) gives the same stream"
      (Prng.next_int64 sa) (Prng.next_int64 sb)
  done

let test_prng_stream_independent () =
  let t = Prng.create 42 in
  let s0 = Prng.stream t 0 and s1 = Prng.stream t 1 in
  check_bool "distinct indices decorrelate" false
    (Prng.next_int64 s0 = Prng.next_int64 s1)

let test_prng_stream_preserves_parent () =
  let a = Prng.create 7 and b = Prng.create 7 in
  (* Deriving (and consuming) streams must not advance the parent. *)
  let s = Prng.stream a 5 in
  ignore (Prng.next_int64 s);
  ignore (Prng.stream a 9);
  Alcotest.(check int64) "parent untouched" (Prng.next_int64 b)
    (Prng.next_int64 a)

(* ------------------------- Event queue ------------------------------ *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let out = ref [] in
  let ev tag = fun () -> out := tag :: !out in
  ignore (Event_queue.schedule q ~at:30 (ev "c"));
  ignore (Event_queue.schedule q ~at:10 (ev "a"));
  ignore (Event_queue.schedule q ~at:20 (ev "b"));
  Alcotest.(check (option int)) "next_time" (Some 10) (Event_queue.next_time q);
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, f) ->
      f ();
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !out)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  let out = ref [] in
  List.iter
    (fun tag -> ignore (Event_queue.schedule q ~at:5 (fun () -> out := tag :: !out)))
    [ "first"; "second"; "third" ];
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, f) ->
      f ();
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "FIFO among equal times"
    [ "first"; "second"; "third" ] (List.rev !out)

let test_event_queue_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.schedule q ~at:1 (fun () -> fired := true) in
  Event_queue.cancel h;
  check_bool "is_cancelled" true (Event_queue.is_cancelled h);
  Alcotest.(check (option int)) "no next" None (Event_queue.next_time q);
  check_bool "nothing fires" true (Event_queue.pop q = None && not !fired);
  check_int "pending" 0 (Event_queue.pending q)

(* [pending] is O(1) bookkeeping, not a heap walk: it must track
   schedule/cancel/pop exactly, including cancellations deep in the heap,
   double cancels, and cancels after the event already fired. *)
let test_event_queue_live_accounting () =
  let q = Event_queue.create () in
  let hs =
    Array.init 100 (fun i -> Event_queue.schedule q ~at:i (fun () -> ()))
  in
  check_int "all live" 100 (Event_queue.pending q);
  Array.iteri (fun i h -> if i mod 2 = 1 then Event_queue.cancel h) hs;
  check_int "half live after deep cancels" 50 (Event_queue.pending q);
  Event_queue.cancel hs.(1);
  check_int "cancel is idempotent" 50 (Event_queue.pending q);
  let fired = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some _ ->
      incr fired;
      check_int "pending tracks pops" (50 - !fired) (Event_queue.pending q);
      drain ()
    | None -> ()
  in
  drain ();
  check_int "every live event fired" 50 !fired;
  let h = Event_queue.schedule q ~at:0 (fun () -> ()) in
  check_bool "fires" true (Event_queue.pop q <> None);
  Event_queue.cancel h;
  check_int "cancel after firing is a no-op" 0 (Event_queue.pending q);
  check_bool "handle not reported cancelled" false (Event_queue.is_cancelled h)

(* The queue recycles handle records of settled-out cancellations; the
   observable contract must survive many schedule/cancel/drain rounds
   (no event lost, none fired twice, accounting exact) whether the
   cancelled entries leave via the top of the heap or via compaction. *)
let test_event_queue_handle_recycling () =
  let q = Event_queue.create () in
  for round = 0 to 9 do
    let n = 200 in
    let fired = Array.make n false in
    let hs =
      Array.init n (fun i ->
          Event_queue.schedule q ~at:((i * 7919) mod n) (fun () ->
              fired.(i) <- true))
    in
    Array.iteri (fun i h -> if i mod 2 = 0 then Event_queue.cancel h) hs;
    check_int
      (Printf.sprintf "round %d: live after cancels" round)
      (n / 2) (Event_queue.pending q);
    let pops = ref 0 in
    let rec drain () =
      match Event_queue.pop q with
      | Some (_, f) ->
        f ();
        incr pops;
        drain ()
      | None -> ()
    in
    drain ();
    check_int (Printf.sprintf "round %d: pops" round) (n / 2) !pops;
    Array.iteri
      (fun i f ->
        check_bool
          (Printf.sprintf "round %d: event %d %s" round i
             (if i mod 2 = 0 then "cancelled" else "fired"))
          (i mod 2 <> 0) f)
      fired;
    check_int (Printf.sprintf "round %d: drained" round) 0 (Event_queue.pending q)
  done;
  (* Compaction path: enough deep cancels that the next [schedule]
     compacts (recycling the skipped entries) instead of settling. *)
  let m = 100 in
  let hs = Array.init m (fun i -> Event_queue.schedule q ~at:i (fun () -> ())) in
  Array.iteri (fun i h -> if i < 60 then Event_queue.cancel h) hs;
  let h = Event_queue.schedule q ~at:0 (fun () -> ()) in
  check_int "live through compaction" 41 (Event_queue.pending q);
  Event_queue.cancel h;
  let rec count acc =
    match Event_queue.pop q with Some _ -> count (acc + 1) | None -> acc
  in
  check_int "survivors fire after compaction" 40 (count 0)

(* Fired handles go back on the free list just like cancelled ones, and
   a pending handle's id is stable until its event fires or is
   cancelled. The id-reuse observation is the documented signal that a
   record was recycled. *)
let test_event_queue_handle_reuse () =
  let q = Event_queue.create () in
  let h0 = Event_queue.schedule q ~at:5 (fun () -> ()) in
  let id0 = Event_queue.handle_id h0 in
  check_bool "fresh handle is live" false (Event_queue.is_null h0);
  (* Stable while pending: other queue traffic must not renumber it. *)
  let h1 = Event_queue.schedule q ~at:1 (fun () -> ()) in
  Event_queue.cancel h1;
  check_int "id stable while pending" id0 (Event_queue.handle_id h0);
  (* Fire h0 through the driver path; its record must be parked... *)
  check_int "event fires" 5 (Event_queue.take_until q ~horizon:10);
  Event_queue.taken q ();
  check_int "queue drained" 0 (Event_queue.pending q);
  (* ...and the very next schedule reuses a recycled record (the free
     list is LIFO, so the id comes from {h0, h1}, not a fresh one). *)
  let h2 = Event_queue.schedule q ~at:7 (fun () -> ()) in
  let id2 = Event_queue.handle_id h2 in
  check_bool "fired/cancelled record reused"
    true
    (id2 = id0 || id2 = Event_queue.handle_id h1);
  Event_queue.cancel h2

(* The zero-allocation contract of the churn path: once the queue's
   arrays and free list are warm, a schedule/cancel/fire cycle driven
   through [take_until]/[taken] allocates nothing. 10k cycles would
   show ~60k words if even one box crept back in, so the tolerance
   below is orders of magnitude away from a real regression. *)
let test_event_queue_steady_state_churn () =
  let q = Event_queue.create () in
  let nop = (fun () -> ()) in
  (* Warm-up: grow the heap arrays and populate the handle free list. *)
  for i = 0 to 255 do
    ignore (Event_queue.schedule q ~at:i nop)
  done;
  let rec drain t = if Event_queue.take_until q ~horizon:1_000_000 >= 0 then begin
      Event_queue.taken q (); drain t end
  in
  drain ();
  let keep = ref Event_queue.null in
  let w0 = Gc.minor_words () in
  for i = 0 to 9_999 do
    let h = Event_queue.schedule q ~at:i nop in
    if i land 1 = 0 then Event_queue.cancel h
    else begin
      keep := h;
      let t = Event_queue.take_until q ~horizon:max_int in
      if t >= 0 then Event_queue.taken q ()
    end
  done;
  let words = Gc.minor_words () -. w0 in
  ignore !keep;
  check_bool
    (Printf.sprintf "steady-state churn allocates (%.0f minor words for 10k cycles)" words)
    true (words < 512.)

(* Memory follows the load back down: after a burst of 32768 in-flight
   events (half cancelled deep in the heap) fully drains, the heap
   arrays must shrink from their high-water capacity and the parked
   handle arena must fall to its floor (1024 records) instead of
   retaining one record per burst event. The burst is sized well above
   the shrink floors so the 4x release assertion has room: a drained
   queue keeps at most 1024-slot arrays and 1024 parked records by
   design. *)
let test_event_queue_burst_releases_memory () =
  let q = Event_queue.create () in
  let n = 32768 in
  let fired = ref 0 in
  let hs =
    Array.init n (fun i -> Event_queue.schedule q ~at:i (fun () -> incr fired))
  in
  Array.iteri (fun i h -> if i mod 2 = 0 then Event_queue.cancel h) hs;
  let cap_peak = Event_queue.capacity q in
  let fp_peak = Event_queue.footprint_words q in
  check_bool "capacity covers the burst" true (cap_peak >= n / 2);
  let rec drain () =
    if Event_queue.take_until q ~horizon:max_int >= 0 then begin
      Event_queue.taken q ();
      drain ()
    end
  in
  drain ();
  check_int "survivors fired" (n / 2) !fired;
  check_int "empty" 0 (Event_queue.pending q);
  check_bool "arena capped at the floor" true
    (Event_queue.retained_handles q <= 1024);
  check_bool "heap arrays released" true (Event_queue.capacity q < cap_peak);
  check_bool "footprint released" true
    (4 * Event_queue.footprint_words q < fp_peak);
  (* The shrunk queue still works. *)
  ignore (Event_queue.schedule q ~at:0 (fun () -> ()));
  check_int "usable after release" 1 (Event_queue.pending q)

(* ----------------------------- Sim ---------------------------------- *)

let test_sim_ordering_and_clock () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 100 (fun () -> log := (100, Sim.now sim) :: !log));
  ignore (Sim.at sim 50 (fun () -> log := (50, Sim.now sim) :: !log));
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "events run at their times" [ (50, 50); (100, 100) ] (List.rev !log)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.at sim 10 (fun () -> fired := 10 :: !fired));
  ignore (Sim.at sim 20 (fun () -> fired := 20 :: !fired));
  Sim.run_until sim 15;
  Alcotest.(check (list int)) "only up to horizon" [ 10 ] (List.rev !fired);
  check_int "clock at horizon" 15 (Sim.now sim);
  Sim.run_until sim 25;
  Alcotest.(check (list int)) "rest runs later" [ 10; 20 ] (List.rev !fired)

let test_sim_cascade () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Sim.after sim 5 (chain (n - 1)))
  in
  ignore (Sim.after sim 5 (chain 9));
  Sim.run sim;
  check_int "cascaded events" 10 !count;
  check_int "clock" 50 (Sim.now sim);
  check_int "steps" 10 (Sim.steps sim)

let test_sim_rejects_past () =
  let sim = Sim.create () in
  ignore (Sim.at sim 10 (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Sim.at: scheduling in the past (5ns < 10ns)") (fun () ->
      ignore (Sim.at sim 5 (fun () -> ())))

let test_sim_cancel_pending () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.at sim 100 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  check_bool "cancelled event never fires" false !fired;
  check_int "clock unchanged without events" 0 (Sim.now sim)

let test_sim_cancel_from_handler () =
  (* An event cancels a later one while running. *)
  let sim = Sim.create () in
  let fired = ref [] in
  let h2 = Sim.at sim 20 (fun () -> fired := 2 :: !fired) in
  ignore (Sim.at sim 10 (fun () ->
      fired := 1 :: !fired;
      Sim.cancel h2));
  Sim.run sim;
  Alcotest.(check (list int)) "only the first fires" [ 1 ] (List.rev !fired)

(* ---------------------------- Stats --------------------------------- *)

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.count s);
  check_float "mean" 5.0 (Stats.mean s);
  check_float "variance (unbiased)" (32. /. 7.) (Stats.variance s);
  check_float "min" 2. (Stats.min_value s);
  check_float "max" 9. (Stats.max_value s);
  check_float "total" 40. (Stats.total s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean of empty" 0. (Stats.mean s);
  check_float "variance of empty" 0. (Stats.variance s);
  check_float "cv of empty" 0. (Stats.cv s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3. ] and ys = [ 9.; 4.; 7. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  check_int "merged count" (Stats.count whole) (Stats.count m);
  check_float "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged variance" (Stats.variance whole)
    (Stats.variance m)

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  check_float "p0" 15. (Stats.percentile xs 0.);
  check_float "p100" 50. (Stats.percentile xs 100.);
  check_float "p50" 35. (Stats.percentile xs 50.);
  check_float "p25 interpolated" 20. (Stats.percentile xs 25.)

let test_jain () =
  check_float "perfectly fair" 1.0 (Stats.jain_index [| 3.; 3.; 3. |]);
  check_float "one hog of four" 0.25 (Stats.jain_index [| 1.; 0.; 0.; 0. |])

let prop_stats_matches_naive =
  QCheck.Test.make ~name:"Welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      Float.abs (Stats.mean s -. mean) < 1e-6 *. (1. +. Float.abs mean)
      && Float.abs (Stats.variance s -. var) < 1e-6 *. (1. +. var))

(* -------------------------- Histogram ------------------------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ -1.; 0.; 1.9; 2.; 9.9; 10.; 11. ];
  check_int "count" 7 (Histogram.count h);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 2 (Histogram.overflow h);
  check_int "bin0 [0,2)" 2 (Histogram.bin_count h 0);
  check_int "bin1 [2,4)" 1 (Histogram.bin_count h 1);
  check_int "bin4 [8,10)" 1 (Histogram.bin_count h 4);
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin1 lo" 2. lo;
  check_float "bin1 hi" 4. hi

let test_histogram_render () =
  let h = Histogram.create ~lo:0. ~hi:4. ~bins:2 in
  List.iter (Histogram.add h) [ 1.; 1.; 3. ];
  let s = Histogram.render h ~width:10 in
  check_bool "render mentions both bins" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length >= 2)

(* ---------------------------- Series -------------------------------- *)

let test_series_basics () =
  let s = Series.create ~name:"x" () in
  Alcotest.(check string) "name" "x" (Series.name s);
  Alcotest.(check (option (pair int (float 0.)))) "empty last" None (Series.last s);
  Series.add s 10 1.;
  Series.add s 20 2.;
  Series.add s 30 3.;
  check_int "length" 3 (Series.length s);
  Alcotest.(check (option (pair int (float 0.)))) "last" (Some (30, 3.)) (Series.last s);
  Alcotest.(check (array (float 0.))) "cumulative" [| 1.; 3.; 6. |] (Series.cumulative s)

let test_series_buckets () =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s t v) [ (5, 1.); (15, 2.); (16, 3.); (25, 4.) ];
  Alcotest.(check (array (float 0.)))
    "bucket_sum width 10" [| 1.; 5.; 4. |]
    (Series.bucket_sum s ~width:10 ~until:30);
  Alcotest.(check (array (float 0.)))
    "bucket_mean width 10" [| 1.; 2.5; 4. |]
    (Series.bucket_mean s ~width:10 ~until:30)

let test_series_value_at () =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s t v) [ (5, 1.); (15, 2.); (25, 4.) ];
  check_float "value_at 4" 0. (Series.value_at s 4);
  check_float "value_at 15 (inclusive)" 3. (Series.value_at s 15);
  check_float "value_at end" 7. (Series.value_at s 100)

let prop_series_bucket_total =
  QCheck.Test.make ~name:"bucket sums preserve total in range" ~count:100
    QCheck.(list (pair (int_bound 999) (float_range 0. 10.)))
    (fun samples ->
      let s = Series.create () in
      let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) samples in
      List.iter (fun (t, v) -> Series.add s t v) sorted;
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. sorted in
      let buckets = Series.bucket_sum s ~width:100 ~until:1000 in
      let bucket_total = Array.fold_left ( +. ) 0. buckets in
      Float.abs (total -. bucket_total) < 1e-6 *. (1. +. total))

(* ---------------------------- Table --------------------------------- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.row t [ "1"; "2" ];
  Table.row t [ "333"; "4" ];
  Table.rowf t "note %d" 5;
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  check_bool "has header + rule + 3 rows" true (List.length lines >= 5);
  check_bool "contains rule" true (String.contains (List.nth lines 1) '-')

(* --------------------------- Tracelog ------------------------------- *)

let test_tracelog () =
  let tr = Tracelog.create () in
  Tracelog.segment tr ~lane:"A" ~start:0 ~stop:10 ~label:"run";
  Tracelog.segment tr ~lane:"B" ~start:10 ~stop:20 ~label:"run";
  Tracelog.mark tr ~lane:"A" ~at:5 ~label:"wake";
  check_int "segments" 2 (List.length (Tracelog.segments tr));
  check_int "marks" 1 (List.length (Tracelog.marks tr));
  let g = Tracelog.render_gantt tr ~cell:5 ~until:20 in
  let lines = String.split_on_char '\n' g |> List.filter (fun l -> l <> "") in
  check_int "one row per lane" 2 (List.length lines);
  check_bool "A active then idle" true
    (String.length (List.nth lines 0) > 0)

let prop_event_queue_total_order =
  QCheck.Test.make ~name:"event queue pops in (time, insertion) order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i at -> ignore (Event_queue.schedule q ~at (fun () -> ignore i))) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (at, _) -> drain (at :: acc)
      in
      let popped = drain [] in
      popped = List.sort Int.compare times)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "bernoulli" `Quick test_prng_bernoulli;
          Alcotest.test_case "pareto and choice" `Quick test_prng_pareto_and_choice;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "stream reproducible" `Quick
            test_prng_stream_reproducible;
          Alcotest.test_case "stream independence" `Quick
            test_prng_stream_independent;
          Alcotest.test_case "stream preserves parent" `Quick
            test_prng_stream_preserves_parent;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "time order" `Quick test_event_queue_order;
          Alcotest.test_case "FIFO ties" `Quick test_event_queue_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_event_queue_cancel;
          Alcotest.test_case "O(1) live accounting" `Quick
            test_event_queue_live_accounting;
          Alcotest.test_case "handle recycling" `Quick
            test_event_queue_handle_recycling;
          Alcotest.test_case "handle reuse and stable ids" `Quick
            test_event_queue_handle_reuse;
          Alcotest.test_case "steady-state churn is allocation-free" `Quick
            test_event_queue_steady_state_churn;
          Alcotest.test_case "burst releases memory" `Quick
            test_event_queue_burst_releases_memory;
          qc prop_event_queue_total_order;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering and clock" `Quick test_sim_ordering_and_clock;
          Alcotest.test_case "run_until horizon" `Quick test_sim_run_until;
          Alcotest.test_case "cascading events" `Quick test_sim_cascade;
          Alcotest.test_case "rejects past scheduling" `Quick test_sim_rejects_past;
          Alcotest.test_case "cancel pending" `Quick test_sim_cancel_pending;
          Alcotest.test_case "cancel from handler" `Quick test_sim_cancel_from_handler;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "jain index" `Quick test_jain;
          qc prop_stats_matches_naive;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
      ( "series",
        [
          Alcotest.test_case "basics" `Quick test_series_basics;
          Alcotest.test_case "buckets" `Quick test_series_buckets;
          Alcotest.test_case "value_at" `Quick test_series_value_at;
          qc prop_series_bucket_total;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ("tracelog", [ Alcotest.test_case "segments and gantt" `Quick test_tracelog ]);
    ]
