(* Tests for the invariant-audit subsystem (lib/check): the sink
   policies, the SFQ rule set, the generic FAIR decorator — including
   that it actually *catches* broken schedulers and fabricated
   transitions, not just that clean runs stay silent — and the
   structure-level hierarchy audit. *)

open Hsfq_core
module Invariant = Hsfq_check.Invariant
module Sfq_rules = Hsfq_check.Sfq_rules
module Audited = Hsfq_check.Audited
module Hierarchy_audit = Hsfq_check.Hierarchy_audit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --------------------------- the sink ------------------------------- *)

let test_collect_sink () =
  let sink = Invariant.create () in
  check_int "fresh sink" 0 (Invariant.count sink);
  Invariant.check sink ~invariant:"vt-monotone" ~node:"/rt" ~event:"charge"
    false "went backwards: %g -> %g" 2. 1.;
  Invariant.check sink ~invariant:"tag-discipline" ~node:"/rt" ~event:"arrive"
    false "S=%g < F=%g" 0. 1.;
  check_int "two violations" 2 (Invariant.count sink);
  (match Invariant.violations sink with
  | [ v1; v2 ] ->
    check_string "rule id" "vt-monotone" v1.Invariant.invariant;
    check_string "node" "/rt" v1.Invariant.node;
    check_string "event" "charge" v1.Invariant.event;
    check_string "formatted detail" "went backwards: 2 -> 1" v1.Invariant.detail;
    check_string "order preserved" "tag-discipline" v2.Invariant.invariant
  | vs -> Alcotest.failf "expected 2 stored violations, got %d" (List.length vs));
  check_bool "summary mentions the count" true
    (String.length (Invariant.summary sink) > 0
    && String.sub (Invariant.summary sink) 0 1 = "2");
  Invariant.clear sink;
  check_int "clear resets" 0 (Invariant.count sink)

let test_limit_caps_storage () =
  let sink = Invariant.create ~limit:2 () in
  for i = 1 to 5 do
    Invariant.check sink ~invariant:"r" ~node:"n" ~event:"e" false "v%d" i
  done;
  check_int "count keeps counting" 5 (Invariant.count sink);
  check_int "storage capped" 2 (List.length (Invariant.violations sink))

let test_raise_sink () =
  let sink = Invariant.create ~policy:Raise () in
  match
    Invariant.check sink ~invariant:"select-min-start" ~node:"sfq" ~event:"select"
      false "S=%g not minimal" 7.
  with
  | () -> Alcotest.fail "expected Violation"
  | exception Invariant.Violation v ->
    check_string "rule" "select-min-start" v.Invariant.invariant;
    check_string "detail" "S=7 not minimal" v.Invariant.detail

let test_passing_checks_silent () =
  let sink = Invariant.create ~policy:Raise () in
  Invariant.check sink ~invariant:"r" ~node:"n" ~event:"e" true "never %s" "built";
  check_int "nothing reported" 0 (Invariant.count sink)

(* ------------------------ SFQ rule set ------------------------------ *)

(* A clean run through the full audited API — arrivals, selections,
   charges, blocking, weight changes, donation and departure — must not
   report anything. *)
let test_audited_sfq_clean () =
  let sink = Invariant.create () in
  let s = Audited.Sfq.create ~node:"t" ~sink () in
  Audited.Sfq.arrive s ~id:1 ~weight:1.;
  Audited.Sfq.arrive s ~id:2 ~weight:2.;
  Audited.Sfq.arrive s ~id:3 ~weight:4.;
  let spin () =
    match Audited.Sfq.select s with
    | Some id -> Audited.Sfq.charge s ~id ~service:10. ~runnable:true
    | None -> Alcotest.fail "selection expected"
  in
  spin ();
  spin ();
  Audited.Sfq.block s ~id:2;
  Audited.Sfq.donate s ~blocked:2 ~recipient:3;
  spin ();
  Audited.Sfq.set_weight s ~id:1 ~weight:3.;
  spin ();
  Audited.Sfq.revoke s ~blocked:2;
  Audited.Sfq.arrive s ~id:2 ~weight:2.;
  spin ();
  Audited.Sfq.block s ~id:1;
  Audited.Sfq.depart s ~id:1;
  spin ();
  check_string "no violations" "0 invariant violations" (Invariant.summary sink)

(* A transition that did not happen as claimed must be caught: here the
   checker is told client 1 departed while it is in fact still there. *)
let test_fabricated_transition_caught () =
  let sink = Invariant.create () in
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  let pre = Sfq_rules.snapshot s in
  Sfq_rules.check_transition ~node:"t" sink ~pre s (Sfq_rules.Depart 1);
  check_bool "violation reported" true (Invariant.count sink > 0);
  match Invariant.violations sink with
  | v :: _ -> check_string "rule" "nrun-consistent" v.Invariant.invariant
  | [] -> Alcotest.fail "expected a stored violation"

(* ---------------------- the FAIR decorator -------------------------- *)

(* A deliberately broken scheduler: it refuses to schedule anyone. The
   decorator must flag the lost work conservation. *)
module Broken : Hsfq_sched.Scheduler_intf.FAIR = struct
  type t = { mutable n : int }

  let algorithm_name = "broken"
  let create ?rng:_ ?quantum_hint:_ () = { n = 0 }
  let arrive t ~id:_ ~weight:_ = t.n <- t.n + 1
  let depart t ~id:_ = if t.n > 0 then t.n <- t.n - 1
  let set_weight _ ~id:_ ~weight:_ = ()
  let select _ = None
  let charge _ ~id:_ ~service:_ ~runnable:_ = ()
  let backlogged t = t.n
  let virtual_time _ = 0.
end

module Audited_broken = Audited.Make (Broken)

let test_decorator_catches_broken_scheduler () =
  let sink = Invariant.create () in
  let a = Audited_broken.wrap ~node:"broken" ~sink (Broken.create ()) in
  Audited_broken.arrive a ~id:1 ~weight:1.;
  check_int "clean so far" 0 (Invariant.count sink);
  (match Audited_broken.select a with Some _ -> () | None -> ());
  check_bool "refusal to schedule reported" true (Invariant.count sink > 0);
  match Invariant.violations sink with
  | v :: _ -> check_string "rule" "work-conserving" v.Invariant.invariant
  | [] -> Alcotest.fail "expected a stored violation"

module Audited_fqs = Audited.Make (Hsfq_sched.Fqs)

let test_decorator_clean_on_real_scheduler () =
  let sink = Invariant.create () in
  let a = Audited_fqs.wrap ~node:"fqs" ~sink (Hsfq_sched.Fqs.create ()) in
  Audited_fqs.arrive a ~id:1 ~weight:1.;
  Audited_fqs.arrive a ~id:2 ~weight:3.;
  for i = 0 to 19 do
    match Audited_fqs.select a with
    | Some id -> Audited_fqs.charge a ~id ~service:5. ~runnable:(i < 19)
    | None -> ()
  done;
  Audited_fqs.depart a ~id:1;
  Audited_fqs.depart a ~id:2;
  check_string "no violations" "0 invariant violations" (Invariant.summary sink)

(* ----------------------- hierarchy audit ---------------------------- *)

let mknod_exn h ~name ~parent ~weight kind =
  match Hierarchy.mknod h ~name ~parent ~weight kind with
  | Ok id -> id
  | Error e -> Alcotest.failf "mknod %s: %s" name e

let test_hierarchy_audit_clean () =
  let sink = Invariant.create () in
  let h = Hierarchy.create () in
  Hierarchy_audit.attach sink h;
  let rt = mknod_exn h ~name:"rt" ~parent:Hierarchy.root ~weight:2. Hierarchy.Internal in
  let a = mknod_exn h ~name:"a" ~parent:rt ~weight:1. Hierarchy.Leaf in
  let b = mknod_exn h ~name:"b" ~parent:rt ~weight:3. Hierarchy.Leaf in
  let ts = mknod_exn h ~name:"ts" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf in
  Hierarchy.setrun h a;
  Hierarchy.setrun h b;
  Hierarchy.setrun h ts;
  for _ = 1 to 50 do
    match Hierarchy.schedule h with
    | Some leaf -> Hierarchy.update h ~leaf ~service:1e6 ~leaf_runnable:true
    | None -> Alcotest.fail "schedule expected a runnable leaf"
  done;
  Hierarchy.sleep h b;
  Hierarchy.set_weight h a 5.;
  for _ = 1 to 20 do
    match Hierarchy.schedule h with
    | Some leaf -> Hierarchy.update h ~leaf ~service:1e6 ~leaf_runnable:true
    | None -> Alcotest.fail "schedule expected a runnable leaf"
  done;
  Hierarchy_audit.check_all sink h;
  check_string "no violations" "0 invariant violations" (Invariant.summary sink)

(* Tamper with an internal node's SFQ behind the structure's back: the
   administered weight no longer matches the registration, which the
   weight-conservation sweep must notice. *)
let test_hierarchy_audit_catches_tampering () =
  let sink = Invariant.create () in
  let h = Hierarchy.create () in
  let rt = mknod_exn h ~name:"rt" ~parent:Hierarchy.root ~weight:2. Hierarchy.Internal in
  let a = mknod_exn h ~name:"a" ~parent:rt ~weight:1. Hierarchy.Leaf in
  Hierarchy.setrun h a;
  Sfq.set_weight (Hierarchy.internal_sfq h Hierarchy.root) ~id:rt ~weight:9.;
  Hierarchy_audit.check_all sink h;
  check_bool "tampering reported" true (Invariant.count sink > 0);
  match Invariant.violations sink with
  | v :: _ ->
    check_string "rule" "weight-conservation" v.Invariant.invariant
  | [] -> Alcotest.fail "expected a stored violation"

let () =
  Alcotest.run "check"
    [
      ( "sink",
        [
          Alcotest.test_case "collect policy stores and counts" `Quick
            test_collect_sink;
          Alcotest.test_case "limit caps storage, not the count" `Quick
            test_limit_caps_storage;
          Alcotest.test_case "raise policy raises" `Quick test_raise_sink;
          Alcotest.test_case "passing checks report nothing" `Quick
            test_passing_checks_silent;
        ] );
      ( "sfq-rules",
        [
          Alcotest.test_case "audited SFQ run is clean" `Quick
            test_audited_sfq_clean;
          Alcotest.test_case "fabricated transition caught" `Quick
            test_fabricated_transition_caught;
        ] );
      ( "decorator",
        [
          Alcotest.test_case "catches a work-shy scheduler" `Quick
            test_decorator_catches_broken_scheduler;
          Alcotest.test_case "clean on a real scheduler" `Quick
            test_decorator_clean_on_real_scheduler;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "structure operations audit clean" `Quick
            test_hierarchy_audit_clean;
          Alcotest.test_case "catches out-of-band tampering" `Quick
            test_hierarchy_audit_catches_tampering;
        ] );
    ]
