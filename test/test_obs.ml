(* Tests for lib/obs — the ring-buffer tracepoint system, per-node
   metrics and the exporters.

   The golden-trace cases regenerate the canonical text dump of a traced
   experiment run through the same [Obs_run] path the CLI uses and
   require byte-equality with the checked-in files under [golden/]
   (regenerate with `make regen-golden` after an intentional schema or
   scheduling change).  The qcheck properties pin the [service] metric
   to the naive [Sfq_reference] oracle and the trace bytes to the
   serial run whatever [--jobs] is. *)

module Ring = Hsfq_obs.Ring
module Trace = Hsfq_obs.Trace
module Metrics = Hsfq_obs.Metrics
module Text_dump = Hsfq_obs.Text_dump
module Chrome_trace = Hsfq_obs.Chrome_trace
module E = Hsfq_experiments
module Sfq = Hsfq_core.Sfq
module Ref = Hsfq_check.Sfq_reference
module Time = Hsfq_engine.Time
module Par = Hsfq_par.Par

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------ ring -------------------------------- *)

let test_ring_capacity_rounding () =
  check_int "minimum 16" 16 (Ring.capacity (Ring.create ~capacity:1));
  check_int "round up" 32 (Ring.capacity (Ring.create ~capacity:17));
  check_int "exact power" 64 (Ring.capacity (Ring.create ~capacity:64))

let test_ring_wraparound () =
  let r = Ring.create ~capacity:16 in
  for i = 0 to 19 do
    let st = Ring.stage r in
    st.(0) <- float_of_int i;
    st.(1) <- float_of_int (-i);
    Ring.emit r ~code:i ~time:(100 * i) ~pid:1 ~a:i ~b:(i + 1) ~c:(i + 2)
      ~d:(i + 3)
  done;
  check_int "total counts past wrap" 20 (Ring.total r);
  check_int "length caps at capacity" 16 (Ring.length r);
  (* Oldest surviving event is the 5th emitted (code 4). *)
  check_int "oldest code" 4 (Ring.code r 0);
  check_int "oldest time" 400 (Ring.time r 0);
  check_int "newest code" 19 (Ring.code r 15);
  check_int "payload a" 4 (Ring.a r 0);
  check_int "payload d" 7 (Ring.d r 0);
  check_float "payload x" 4. (Ring.x r 0);
  check_float "payload y" (-4.) (Ring.y r 0);
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Ring: index out of range") (fun () ->
      ignore (Ring.code r 16))

let test_ring_stage_persists () =
  let r = Ring.create ~capacity:16 in
  (Ring.stage r).(0) <- 2.5;
  (Ring.stage r).(1) <- -1.25;
  Ring.emit r ~code:1 ~time:0 ~pid:1 ~a:0 ~b:0 ~c:0 ~d:0;
  (* Emitting again without restaging records the previous payload. *)
  Ring.emit r ~code:2 ~time:1 ~pid:1 ~a:0 ~b:0 ~c:0 ~d:0;
  check_float "x copied" 2.5 (Ring.x r 0);
  check_float "y copied" (-1.25) (Ring.y r 0);
  check_float "stale stage re-recorded" 2.5 (Ring.x r 1)

let test_ring_clear () =
  let r = Ring.create ~capacity:16 in
  for i = 1 to 5 do
    Ring.emit r ~code:i ~time:i ~pid:1 ~a:0 ~b:0 ~c:0 ~d:0
  done;
  Ring.clear r;
  check_int "length after clear" 0 (Ring.length r);
  check_int "total after clear" 0 (Ring.total r)

(* ------------------------------ trace ------------------------------- *)

let test_trace_disabled_records_nothing () =
  let tr = Trace.create ~capacity:64 ~enabled:false () in
  let s = Trace.register_sys tr ~label:"k" in
  Trace.emit0 s ~code:Trace.ev_spawn ~a:1 ~b:2 ~c:0 ~d:0;
  Trace.emitf s ~code:Trace.ev_pick ~a:0 ~b:1 ~c:0 ~d:0;
  check_int "nothing recorded" 0 (Ring.total (Trace.ring tr));
  Alcotest.(check bool) "on mirrors enabled" false (Trace.on s);
  Trace.set_enabled tr true;
  Trace.set_now tr 42;
  Trace.emit0 s ~code:Trace.ev_spawn ~a:1 ~b:2 ~c:0 ~d:0;
  check_int "recorded once enabled" 1 (Ring.total (Trace.ring tr));
  check_int "stamped time" 42 (Ring.time (Trace.ring tr) 0);
  check_int "stamped pid" (Trace.pid s) (Ring.pid (Trace.ring tr) 0)

let test_trace_emit0_zeroes_stage () =
  let tr = Trace.create ~capacity:64 ~enabled:true () in
  let s = Trace.register_sys tr ~label:"k" in
  (Trace.stage s).(0) <- 9.;
  (Trace.stage s).(1) <- 9.;
  Trace.emit0 s ~code:Trace.ev_spawn ~a:0 ~b:0 ~c:0 ~d:0;
  check_float "x zeroed" 0. (Ring.x (Trace.ring tr) 0);
  check_float "y zeroed" 0. (Ring.y (Trace.ring tr) 0)

let test_trace_sys_and_lanes () =
  let tr = Trace.create ~capacity:64 ~enabled:true () in
  let s1 = Trace.register_sys tr ~label:"alpha" in
  let s2 = Trace.register_sys tr ~label:"beta" in
  check_int "pids allocate from 1" 1 (Trace.pid s1);
  check_int "second pid" 2 (Trace.pid s2);
  check_int "sys_count" 2 (Trace.sys_count tr);
  Alcotest.(check string) "label by pid" "beta" (Trace.sys_label tr 2);
  Trace.name_lane s1 ~lane:7 ~name:"worker";
  Trace.name_lane s1 ~lane:(Trace.node_lane 3) ~name:"/a/b";
  Trace.name_lane s1 ~lane:7 ~name:"renamed";
  check_int "renaming does not add a lane" 2 (Trace.lane_count tr);
  Alcotest.(check string) "rename wins" "renamed" (Trace.lane_name tr 0);
  check_int "node lane offset" (Trace.node_lane_base + 3) (Trace.lane_id tr 1);
  check_int "lane pid" 1 (Trace.lane_pid tr 1)

let test_code_names_distinct () =
  let seen = Hashtbl.create 32 in
  for code = 1 to 26 do
    let n = Trace.code_name code in
    Alcotest.(check bool)
      (Printf.sprintf "code %d named" code)
      false (n = "unknown");
    Alcotest.(check bool) (Printf.sprintf "%s unique" n) false (Hashtbl.mem seen n);
    Hashtbl.replace seen n ()
  done;
  Alcotest.(check string) "out of range" "unknown" (Trace.code_name 0)

(* ----------------------------- metrics ------------------------------ *)

let test_metrics_accumulation () =
  let m = Metrics.create () in
  Alcotest.(check bool) "inactive before samples" false (Metrics.active m ~node:3);
  Metrics.charge_sample m ~node:3 ~service:10. ~norm:5. ~vt:100.;
  Metrics.charge_sample m ~node:3 ~service:6. ~norm:3. ~vt:104.;
  Metrics.incr_preempt m ~node:3;
  Metrics.wait_sample m ~node:3 2.5e6;
  Metrics.wait_sample m ~node:3 1e9 (* overflow bucket still counted *);
  check_int "node_count" 4 (Metrics.node_count m);
  Alcotest.(check bool) "active" true (Metrics.active m ~node:3);
  check_float "service" 16. (Metrics.service m ~node:3);
  check_float "norm service" 8. (Metrics.norm_service m ~node:3);
  check_int "quanta" 2 (Metrics.quanta m ~node:3);
  check_int "preemptions" 1 (Metrics.preemptions m ~node:3);
  (* lag = norm (8) - vt advance (104 - 100). *)
  check_float "vt lag" 4. (Metrics.vt_lag m ~node:3);
  (match Metrics.wait_histogram m ~node:3 with
  | None -> Alcotest.fail "expected a wait histogram"
  | Some h -> check_int "wait samples" 2 (Hsfq_engine.Histogram.count h));
  (* Untouched ids read as zero. *)
  check_float "untouched service" 0. (Metrics.service m ~node:200);
  check_int "untouched quanta" 0 (Metrics.quanta m ~node:200);
  check_float "single-sample lag" 0.
    (let m2 = Metrics.create () in
     Metrics.charge_sample m2 ~node:0 ~service:1. ~norm:1. ~vt:50.;
     Metrics.vt_lag m2 ~node:0)

(* ------------------------ minimal JSON reader ----------------------- *)

(* Just enough JSON to validate the Chrome exporter's output: parses the
   full grammar (escapes included) and fails loudly on trailing garbage.
   Not a library — a test oracle. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          for _ = 1 to 4 do
            (match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
            | _ -> fail "bad \\u escape");
            advance ()
          done;
          Buffer.add_char b '?'
        | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Bool true
      end
      else fail "bad literal"
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Bool false
      end
      else fail "bad literal"
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else fail "bad literal"
    | '-' | '0' .. '9' -> Num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* --------------------------- golden traces -------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

let golden_capacity = 1024 (* keep the fig5 golden file reviewable *)

(* One traced fig5 run shared by the golden-text and Chrome-JSON cases
   (the run is deterministic but not free). *)
let fig5_trace =
  lazy
    (match E.Obs_run.traced_compute ~capacity:golden_capacity "fig5" with
    | Some (_, tr) -> tr
    | None -> Alcotest.fail "fig5 not registered")

let test_golden_fig1 () =
  match E.Obs_run.text "fig1" with
  | None -> Alcotest.fail "fig1 not registered"
  | Some dump ->
    Alcotest.(check string)
      "fig1 text dump matches golden/fig1.trace (make regen-golden)"
      (read_file "golden/fig1.trace") dump

let test_golden_fig5 () =
  let dump = Text_dump.dump (Lazy.force fig5_trace) in
  Alcotest.(check string)
    "fig5 text dump matches golden/fig5.trace (make regen-golden)"
    (read_file "golden/fig5.trace") dump

let test_chrome_export_valid () =
  let tr = Lazy.force fig5_trace in
  let j = parse_json (Chrome_trace.export tr) in
  (match member "displayTimeUnit" j with
  | Some (Str "ms") -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit");
  match member "traceEvents" j with
  | Some (Arr events) ->
    Alcotest.(check bool) "events present" true (List.length events > 500);
    let phases = Hashtbl.create 8 in
    List.iter
      (fun ev ->
        (match (member "pid" ev, member "tid" ev) with
        | Some (Num _), Some (Num _) -> ()
        | _ -> Alcotest.fail "event missing pid/tid");
        match (member "name" ev, member "ph" ev) with
        | Some (Str _), Some (Str ph) ->
          Hashtbl.replace phases ph ()
          (* complete events must carry a duration *)
          ;
          if ph = "X" then
            (match member "dur" ev with
            | Some (Num d) ->
              Alcotest.(check bool) "dur >= 0" true (d >= 0.)
            | _ -> Alcotest.fail "X event missing dur")
        | _ -> Alcotest.fail "event missing name/ph")
      events;
    List.iter
      (fun ph ->
        Alcotest.(check bool)
          (Printf.sprintf "phase %s present" ph)
          true (Hashtbl.mem phases ph))
      [ "M"; "X"; "i" ]
  | _ -> Alcotest.fail "missing traceEvents"

(* Exporters must agree with the CLI byte-for-byte: both go through
   Obs_run, so a second traced run reproduces the first exactly. *)
let test_trace_deterministic () =
  let a = E.Obs_run.text ~capacity:golden_capacity "fig5" in
  let b = Some (Text_dump.dump (Lazy.force fig5_trace)) in
  Alcotest.(check (option string)) "two traced runs agree" b a

(* --------------------- qcheck: metrics vs oracle -------------------- *)

(* Drive the optimized Sfq (with a tracer attached) and the naive
   reference through one random op sequence; the per-client [service]
   and [quanta] metrics must equal the totals accumulated from the
   oracle's charges, and every selection must agree along the way. *)
let metrics_match_oracle ops =
  let tr = Trace.create ~capacity:64 ~enabled:true () in
  let s = Trace.register_sys tr ~label:"sfq" in
  let q = Sfq.create () in
  Sfq.set_obs q (Some s) ~node:0;
  let r = Ref.create () in
  let ids = 6 in
  let service_acc = Array.make (ids + 1) 0. in
  let quanta_acc = Array.make (ids + 1) 0 in
  let ok =
    List.for_all
      (fun (id, op) ->
        let id = 1 + (id mod ids) in
        match op with
        | 0 | 1 ->
          let weight = float_of_int (1 + (id mod 4)) in
          Sfq.arrive q ~id ~weight;
          Ref.arrive r ~id ~weight;
          true
        | 2 | 3 -> (
          let a = Sfq.select_id q in
          match (a, Ref.select r) with
          | -1, None -> true
          | a, Some b when a = b ->
            let service = float_of_int ((10 * id) + op) in
            let runnable = (id + op) mod 2 = 0 in
            Sfq.charge q ~id:a ~service ~runnable;
            Ref.charge r ~id:b ~service ~runnable;
            service_acc.(a) <- service_acc.(a) +. service;
            quanta_acc.(a) <- quanta_acc.(a) + 1;
            true
          | _ -> false (* selections diverged *))
        | 4 ->
          if Sfq.mem q ~id then begin
            Sfq.block q ~id;
            Ref.block r ~id
          end;
          true
        | _ ->
          if Sfq.mem q ~id then begin
            let weight = float_of_int id in
            Sfq.set_weight q ~id ~weight;
            Ref.set_weight r ~id ~weight
          end;
          true)
      ops
  in
  let m = Trace.metrics s in
  ok
  && Array.for_all (fun i -> i)
       (Array.init (ids + 1) (fun id ->
            Float.abs (Metrics.service m ~node:id -. service_acc.(id)) < 1e-6
            && Metrics.quanta m ~node:id = quanta_acc.(id)))

let prop_service_metric_matches_oracle =
  QCheck.Test.make
    ~name:"per-node service metric equals the Sfq_reference totals" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 120) (pair (int_bound 5) (int_bound 5)))
    metrics_match_oracle

(* ----------------- qcheck: parallel trace determinism --------------- *)

(* A small traced kernel run, a pure function of its seed. *)
let traced_dump seed =
  let (), tr =
    E.Obs_run.capture ~capacity:2048 (fun () ->
        let sys = E.Common.make_sys ~obs_label:(Printf.sprintf "s%d" seed) () in
        let leaf, h =
          E.Common.sfq_leaf sys ~parent:Hsfq_core.Hierarchy.root ~name:"work"
            ~weight:1. ()
        in
        let _ =
          E.Common.dhrystone_thread sys ~leaf ~sfq:h ~name:"a" ~weight:1.
            ~loop_cost:(Time.microseconds (300 + (37 * (seed mod 7))))
        in
        let _ =
          E.Common.dhrystone_thread sys ~leaf ~sfq:h ~name:"b" ~weight:2.
            ~loop_cost:(Time.microseconds 450)
        in
        Hsfq_kernel.Kernel.run_until sys.E.Common.k (Time.milliseconds 30))
  in
  Text_dump.dump tr

let test_trace_bytes_jobs_independent () =
  let tasks = Array.init 8 (fun i -> i) in
  let run ?backend jobs = Par.sweep ?backend ~jobs ~tasks traced_dump in
  let serial = run 1 in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d recorded events" i)
        true
        (String.length d > 200))
    serial;
  (* processes before domains: fork is forbidden once a domain has been
     spawned in this executable *)
  Alcotest.(check (array string))
    "jobs 1 = processes jobs 4" serial
    (run ~backend:Par.Processes 4);
  Alcotest.(check (array string)) "jobs 1 = jobs 4" serial (run 4)

(* ------------------------------- main ------------------------------- *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "capacity rounding" `Quick test_ring_capacity_rounding;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "stage persists" `Quick test_ring_stage_persists;
          Alcotest.test_case "clear" `Quick test_ring_clear;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "emit0 zeroes stage" `Quick
            test_trace_emit0_zeroes_stage;
          Alcotest.test_case "sys handles and lanes" `Quick
            test_trace_sys_and_lanes;
          Alcotest.test_case "code names distinct" `Quick
            test_code_names_distinct;
        ] );
      ( "metrics",
        [ Alcotest.test_case "accumulation" `Quick test_metrics_accumulation ] );
      ( "golden",
        [
          Alcotest.test_case "fig1 text dump" `Quick test_golden_fig1;
          Alcotest.test_case "fig5 text dump" `Slow test_golden_fig5;
          Alcotest.test_case "fig5 Chrome JSON valid" `Slow
            test_chrome_export_valid;
          Alcotest.test_case "traced runs deterministic" `Slow
            test_trace_deterministic;
        ] );
      ( "properties",
        [
          qc prop_service_metric_matches_oracle;
          Alcotest.test_case "trace bytes independent of --jobs" `Slow
            test_trace_bytes_jobs_independent;
        ] );
    ]
