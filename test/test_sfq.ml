(* Unit and property tests for the paper's core algorithm (lib/core/sfq).

   The property tests check the paper's central claims directly:
   - eq. 3 fairness bound for continuously backlogged clients, under
     arbitrary (adversarial) quantum lengths — i.e. fluctuating service;
   - proportional sharing in the long run;
   - virtual-time rules (busy: start tag in service; idle: max finish
     tag);
   - work conservation. *)

open Hsfq_core

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Drive one full quantum: select, assert it is [expect], charge [l]. *)
let step ?(runnable = true) sfq ~expect ~l =
  match Sfq.select sfq with
  | Some id when id = expect -> Sfq.charge sfq ~id ~service:l ~runnable
  | Some id -> Alcotest.failf "expected client %d, got %d" expect id
  | None -> Alcotest.fail "expected a selection"

(* ------------------------- unit tests ------------------------------- *)

let test_single_client () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:2.;
  check_int "backlogged" 1 (Sfq.backlogged s);
  step s ~expect:1 ~l:10.;
  check_float "finish = l/w" 5. (Sfq.finish_tag s ~id:1);
  check_float "next start = finish" 5. (Sfq.start_tag s ~id:1);
  step s ~expect:1 ~l:10.;
  check_float "finish accumulates" 10. (Sfq.finish_tag s ~id:1)

let test_worked_example_tags () =
  (* §3: threads A (w=1) and B (w=2), 10 ms quanta. *)
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:2.;
  check_float "S_A = 0" 0. (Sfq.start_tag s ~id:1);
  check_float "S_B = 0" 0. (Sfq.start_tag s ~id:2);
  (* FIFO tie-break: A (inserted first) runs first. *)
  step s ~expect:1 ~l:10.;
  check_float "F_A = 10" 10. (Sfq.finish_tag s ~id:1);
  check_float "S_A = 10" 10. (Sfq.start_tag s ~id:1);
  step s ~expect:2 ~l:10.;
  check_float "F_B = 5" 5. (Sfq.finish_tag s ~id:2);
  check_float "S_B = 5" 5. (Sfq.start_tag s ~id:2);
  step s ~expect:2 ~l:10.;
  check_float "F_B = 10" 10. (Sfq.finish_tag s ~id:2);
  (* Tie at 10: A's entry is older. *)
  step s ~expect:1 ~l:10.;
  step s ~expect:2 ~l:10.;
  step s ~expect:2 ~l:10.;
  (* After 60 ms: A has run 20, B 40 — exactly the paper's 1:2. *)
  check_float "F_A" 20. (Sfq.finish_tag s ~id:1);
  check_float "F_B" 20. (Sfq.finish_tag s ~id:2)

let test_virtual_time_busy () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:1.;
  check_float "initial vt" 0. (Sfq.virtual_time s);
  match Sfq.select s with
  | Some id ->
    check_float "vt = start tag in service" (Sfq.start_tag s ~id)
      (Sfq.virtual_time s);
    Sfq.charge s ~id ~service:4. ~runnable:true
  | None -> Alcotest.fail "selection expected"

let test_virtual_time_idle () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  step s ~runnable:false ~expect:1 ~l:30.;
  (* System idle: v = max finish tag. *)
  check_float "vt = max finish on idle" 30. (Sfq.virtual_time s);
  Sfq.arrive s ~id:2 ~weight:1.;
  check_float "newcomer starts at vt" 30. (Sfq.start_tag s ~id:2)

let test_blocked_retains_finish_tag () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:1.;
  step s ~expect:1 ~l:10. ~runnable:false;
  (* 2 runs alone for a while. *)
  step s ~expect:2 ~l:10.;
  step s ~expect:2 ~l:10.;
  step s ~expect:2 ~l:10.;
  (* 1 returns: S = max(v, F_1) = max(20, 10) = 20 (no credit for sleep,
     no penalty either). *)
  Sfq.arrive s ~id:1 ~weight:1.;
  check_float "resume start tag" 20. (Sfq.start_tag s ~id:1)

let test_blocked_arrive_applies_weight () =
  (* Regression: a blocked client returning with a different weight must
     be charged at that weight from its next quantum on (its class may
     have been re-administered while it slept). *)
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:1.;
  step s ~expect:1 ~l:10. ~runnable:false;
  step s ~expect:2 ~l:10.;
  Sfq.arrive s ~id:1 ~weight:4.;
  check_float "new weight recorded" 4. (Sfq.weight s ~id:1);
  (* Both re-queued at S=10; FIFO favours 2 (enqueued first). *)
  step s ~expect:2 ~l:10.;
  step s ~expect:1 ~l:8.;
  check_float "charged at the new weight" 12. (Sfq.finish_tag s ~id:1)

let test_arrive_idempotent () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:1 ~weight:999.;
  check_int "still one client" 1 (Sfq.backlogged s);
  step s ~expect:1 ~l:10.;
  check_float "original weight used" 10. (Sfq.finish_tag s ~id:1)

let test_weight_change_future_only () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  step s ~expect:1 ~l:10.;
  Sfq.set_weight s ~id:1 ~weight:2.;
  step s ~expect:1 ~l:10.;
  check_float "second quantum at new weight" 15. (Sfq.finish_tag s ~id:1)

let test_select_requires_charge () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  ignore (Sfq.select s);
  Alcotest.check_raises "charge of wrong client"
    (Invalid_argument "Sfq.charge: client not in service") (fun () ->
      Sfq.charge s ~id:99 ~service:1. ~runnable:true)

let test_depart_in_service_rejected () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  ignore (Sfq.select s);
  Alcotest.check_raises "depart while in service"
    (Invalid_argument "Sfq.depart: client in service") (fun () ->
      Sfq.depart s ~id:1)

let test_block_api () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:1.;
  Sfq.block s ~id:2;
  check_int "blocked leaves ready set" 1 (Sfq.backlogged s);
  check_bool "not runnable" false (Sfq.is_runnable s ~id:2);
  step s ~expect:1 ~l:10.;
  step s ~expect:1 ~l:10.;
  Sfq.arrive s ~id:2 ~weight:1.;
  (* Finish tag was preserved (0), so S = max(v, 0) = v. *)
  check_float "rejoin at current vt" 10. (Sfq.start_tag s ~id:2)

let test_depart_forgets () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.depart s ~id:1;
  check_int "gone" 0 (Sfq.backlogged s);
  Alcotest.check_raises "tags of unknown client"
    (Invalid_argument "Sfq: unknown client 1") (fun () ->
      ignore (Sfq.start_tag s ~id:1))

let test_reincarnated_id_ignores_stale_entries () =
  (* Regression (found by the lib/check audit): depart leaves stale heap
     entries; a new client reusing the id must not validate them, or a
     select would pop an obsolete start tag and drag v(t) backwards. *)
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:1.;
  (* 1 blocks mid-queue; 2 departs while its S=0 entry is queued. *)
  step s ~expect:1 ~l:2. ~runnable:false;
  Sfq.depart s ~id:2;
  (* System idle: v = max finish = 2. Id 2 is reborn, S = max(2, 0). *)
  Sfq.arrive s ~id:2 ~weight:1.;
  check_float "reborn start tag" 2. (Sfq.start_tag s ~id:2);
  step s ~expect:2 ~l:2.;
  check_float "vt never regressed" 2. (Sfq.virtual_time s);
  check_float "finish from the fresh tag" 4. (Sfq.finish_tag s ~id:2)

let test_invalid_arguments () =
  let s = Sfq.create () in
  Alcotest.check_raises "zero weight" (Invalid_argument "Sfq.arrive: weight <= 0")
    (fun () -> Sfq.arrive s ~id:1 ~weight:0.);
  Sfq.arrive s ~id:1 ~weight:1.;
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Sfq.set_weight: weight <= 0") (fun () ->
      Sfq.set_weight s ~id:1 ~weight:(-1.));
  ignore (Sfq.select s);
  Alcotest.check_raises "negative service"
    (Invalid_argument "Sfq.charge: negative service") (fun () ->
      Sfq.charge s ~id:1 ~service:(-5.) ~runnable:true)

let test_donation () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:3.;
  Sfq.arrive s ~id:2 ~weight:1.;
  (* 1 blocks on a resource held by 2: donate 1's weight to 2. *)
  Sfq.donate s ~blocked:1 ~recipient:2;
  step s ~expect:1 ~l:12.;
  step s ~expect:2 ~l:12.;
  (* 2 was charged at effective weight 1 + 3 = 4. *)
  check_float "donated weight" 3. (Sfq.finish_tag s ~id:2);
  Sfq.revoke s ~blocked:1;
  step s ~expect:2 ~l:12.;
  check_float "after revoke, back to own weight" 15. (Sfq.finish_tag s ~id:2)

let test_donation_replaced () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:2.;
  Sfq.arrive s ~id:2 ~weight:1.;
  Sfq.arrive s ~id:3 ~weight:1.;
  Sfq.donate s ~blocked:1 ~recipient:2;
  (* Re-donating from the same blocker moves the donation. *)
  Sfq.donate s ~blocked:1 ~recipient:3;
  step s ~expect:1 ~l:4.;
  step s ~expect:2 ~l:4.;
  check_float "2 back to weight 1" 4. (Sfq.finish_tag s ~id:2);
  step s ~expect:3 ~l:3.;
  check_float "3 has 1+2" 1. (Sfq.finish_tag s ~id:3)

let test_self_donation_rejected () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Alcotest.check_raises "self donation" (Invalid_argument "Sfq.donate: self-donation")
    (fun () -> Sfq.donate s ~blocked:1 ~recipient:1)

let test_fifo_tie_break_deterministic () =
  let s = Sfq.create () in
  for i = 1 to 5 do
    Sfq.arrive s ~id:i ~weight:1.
  done;
  let order =
    List.init 5 (fun _ ->
        match Sfq.select s with
        | Some id ->
          Sfq.charge s ~id ~service:1. ~runnable:true;
          id
        | None -> Alcotest.fail "selection expected")
  in
  Alcotest.(check (list int)) "FIFO among equal tags" [ 1; 2; 3; 4; 5 ] order

(* ----------------------- property tests ----------------------------- *)

(* Random quantum lengths model fluctuating service: the eq. 3 bound must
   hold at every prefix for two continuously backlogged clients. *)
let prop_fairness_bound =
  QCheck.Test.make ~name:"eq. 3 fairness bound (2 clients, adversarial quanta)"
    ~count:300
    QCheck.(
      pair
        (pair (float_range 0.1 10.) (float_range 0.1 10.))
        (list_of_size (Gen.int_range 10 200) (float_range 0.1 5.)))
    (fun ((w1, w2), quanta) ->
      let s = Sfq.create () in
      Sfq.arrive s ~id:1 ~weight:w1;
      Sfq.arrive s ~id:2 ~weight:w2;
      let work = [| 0.; 0. |] in
      let lmax = [| 0.; 0. |] in
      List.for_all
        (fun l ->
          match Sfq.select s with
          | None -> false
          | Some id ->
            Sfq.charge s ~id ~service:l ~runnable:true;
            work.(id - 1) <- work.(id - 1) +. l;
            if l > lmax.(id - 1) then lmax.(id - 1) <- l;
            let lag = Float.abs ((work.(0) /. w1) -. (work.(1) /. w2)) in
            (* Before a client has run, credit it with the largest
               quantum seen so far. *)
            let m = Float.max lmax.(0) lmax.(1) in
            let l1 = if lmax.(0) = 0. then m else lmax.(0) in
            let l2 = if lmax.(1) = 0. then m else lmax.(1) in
            lag <= (l1 /. w1) +. (l2 /. w2) +. 1e-9)
        quanta)

(* The pairwise bound must hold between EVERY pair of continuously
   backlogged clients, not just two. *)
let prop_fairness_bound_n_clients =
  QCheck.Test.make ~name:"eq. 3 bound pairwise over 5 clients" ~count:100
    QCheck.(list_of_size (Gen.int_range 50 300) (float_range 0.2 4.))
    (fun quanta ->
      let n = 5 in
      let s = Sfq.create () in
      let weights = Array.init n (fun i -> 0.5 +. float_of_int i) in
      Array.iteri (fun i w -> Sfq.arrive s ~id:i ~weight:w) weights;
      let work = Array.make n 0. in
      let lmax = Array.make n 0. in
      let bound_ok () =
        let m = Array.fold_left Float.max 0. lmax in
        let l i = if lmax.(i) = 0. then m else lmax.(i) in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let lag = Float.abs ((work.(i) /. weights.(i)) -. (work.(j) /. weights.(j))) in
            if lag > (l i /. weights.(i)) +. (l j /. weights.(j)) +. 1e-9 then ok := false
          done
        done;
        !ok
      in
      List.for_all
        (fun q ->
          match Sfq.select s with
          | None -> false
          | Some id ->
            Sfq.charge s ~id ~service:q ~runnable:true;
            work.(id) <- work.(id) +. q;
            if q > lmax.(id) then lmax.(id) <- q;
            bound_ok ())
        quanta)

let prop_proportional_share =
  QCheck.Test.make ~name:"long-run shares proportional to weights" ~count:100
    QCheck.(pair (float_range 0.5 8.) (float_range 0.5 8.))
    (fun (w1, w2) ->
      let s = Sfq.create () in
      Sfq.arrive s ~id:1 ~weight:w1;
      Sfq.arrive s ~id:2 ~weight:w2;
      let work = [| 0.; 0. |] in
      for _ = 1 to 5000 do
        match Sfq.select s with
        | Some id ->
          Sfq.charge s ~id ~service:1. ~runnable:true;
          work.(id - 1) <- work.(id - 1) +. 1.
        | None -> ()
      done;
      let expected = w1 /. w2 in
      let actual = work.(0) /. work.(1) in
      Float.abs (actual -. expected) /. expected < 0.02)

let prop_virtual_time_monotonic =
  QCheck.Test.make ~name:"virtual time never decreases" ~count:200
    QCheck.(list_of_size (Gen.int_range 20 150) (int_bound 3))
    (fun ops ->
      let s = Sfq.create () in
      for i = 0 to 3 do
        Sfq.arrive s ~id:i ~weight:(float_of_int (i + 1))
      done;
      let prev = ref (-1.) in
      List.for_all
        (fun op ->
          (* [op] names the client that blocks after the next quantum
             and is then woken again — exercising idle transitions. *)
          (match Sfq.select s with
          | Some id -> Sfq.charge s ~id ~service:2. ~runnable:(id <> op)
          | None -> ());
          Sfq.arrive s ~id:op ~weight:1.;
          let vt = Sfq.virtual_time s in
          let ok = vt >= !prev in
          prev := vt;
          ok)
        ops)

let prop_work_conserving =
  QCheck.Test.make ~name:"select succeeds iff backlogged" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (pair (int_bound 4) bool))
    (fun ops ->
      let s = Sfq.create () in
      let runnable = Array.make 5 false in
      List.for_all
        (fun (i, wake) ->
          if wake then begin
            Sfq.arrive s ~id:i ~weight:1.;
            runnable.(i) <- true
          end;
          let n = Array.fold_left (fun a b -> if b then a + 1 else a) 0 runnable in
          if Sfq.backlogged s <> n then false
          else begin
            match Sfq.select s with
            | Some id ->
              (* The selected client blocks when it matches [i] and the
                 coin came up tails. *)
              let still = wake || i <> id in
              Sfq.charge s ~id ~service:1. ~runnable:still;
              if not still then runnable.(id) <- false;
              true
            | None -> n = 0
          end)
        ops)

(* Float64 tags against a long horizon: after a million 20 ms quanta
   (~5.5 simulated hours) the ratio must still be exact and the lag
   within the bound — no cumulative floating-point drift. *)
let test_long_run_no_drift () =
  let s = Sfq.create () in
  Sfq.arrive s ~id:1 ~weight:1.;
  Sfq.arrive s ~id:2 ~weight:3.;
  let q = 2e7 (* 20 ms in ns *) in
  let work = [| 0.; 0. |] in
  for _ = 1 to 1_000_000 do
    match Sfq.select s with
    | Some id ->
      Sfq.charge s ~id ~service:q ~runnable:true;
      work.(id - 1) <- work.(id - 1) +. q
    | None -> Alcotest.fail "selection expected"
  done;
  let ratio = work.(1) /. work.(0) in
  check_bool "exact 1:3 after 1M quanta" true (Float.abs (ratio -. 3.) < 1e-6);
  let lag = Float.abs (work.(0) -. (work.(1) /. 3.)) in
  check_bool "lag within bound at the horizon" true (lag <= (q +. (q /. 3.)) +. 1.);
  check_bool "virtual time finite and sane" true
    (Float.is_finite (Sfq.virtual_time s) && Sfq.virtual_time s > 0.)

(* Donations compose and revoke cleanly: after arbitrary donate/revoke
   sequences, revoking every blocker restores base-weight charging. *)
let prop_donations_revocable =
  QCheck.Test.make ~name:"donations always fully revocable" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (pair (int_bound 3) (int_bound 3)))
    (fun ops ->
      let s = Sfq.create () in
      for i = 0 to 3 do
        Sfq.arrive s ~id:i ~weight:(float_of_int (i + 1))
      done;
      List.iter
        (fun (b, r) -> if b <> r then Sfq.donate s ~blocked:b ~recipient:r)
        ops;
      for b = 0 to 3 do
        Sfq.revoke s ~blocked:b
      done;
      (* Every client now charges at its base weight again. *)
      List.for_all
        (fun _ ->
          match Sfq.select s with
          | Some id ->
            let start = Sfq.start_tag s ~id in
            Sfq.charge s ~id ~service:(float_of_int (id + 1)) ~runnable:true;
            (* service = weight, so the finish tag moves exactly 1. *)
            Float.abs (Sfq.finish_tag s ~id -. (start +. 1.)) < 1e-9
          | None -> false)
        [ (); (); (); (); (); (); (); () ])

(* Theorem 1 proper: the unfairness bound holds over EVERY window in
   which both clients are continuously backlogged, not just prefixes
   from time zero. Cumulative work is sampled at each quantum boundary
   and all O(n^2) windows are checked against l1/w1 + l2/w2 (with the
   per-client maximum quantum relaxed to the global maximum, which only
   loosens the bound). *)
let prop_windowed_unfairness =
  QCheck.Test.make
    ~name:"Theorem 1 bound over every backlogged window" ~count:100
    QCheck.(
      pair
        (pair (float_range 0.5 4.) (float_range 0.5 4.))
        (list_of_size (Gen.int_range 20 150) (float_range 0.1 2.)))
    (fun ((w1, w2), quanta) ->
      let s = Sfq.create () in
      Sfq.arrive s ~id:1 ~weight:w1;
      Sfq.arrive s ~id:2 ~weight:w2;
      let work = [| 0.; 0. |] in
      let lmax = ref 0. in
      let hist = ref [ (0., 0.) ] in
      List.iter
        (fun l ->
          (match Sfq.select s with
          | Some id ->
            Sfq.charge s ~id ~service:l ~runnable:true;
            work.(id - 1) <- work.(id - 1) +. l;
            if l > !lmax then lmax := l
          | None -> ());
          hist := (work.(0), work.(1)) :: !hist)
        quanta;
      let pts = Array.of_list (List.rev !hist) in
      let bound = (!lmax /. w1) +. (!lmax /. w2) +. 1e-9 in
      let n = Array.length pts in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a1, a2 = pts.(i) and b1, b2 = pts.(j) in
          let lag = Float.abs (((b1 -. a1) /. w1) -. ((b2 -. a2) /. w2)) in
          if lag > bound then ok := false
        done
      done;
      !ok)

(* Random legal op sequences through the audited wrapper: whatever the
   interleaving of arrivals, quanta, blocking, weight changes, donation
   and departure, the lib/check invariants must never fire. *)
let prop_audited_never_trips =
  QCheck.Test.make
    ~name:"random op sequences trip no lib/check invariant" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 120) (pair (int_bound 5) (int_bound 6)))
    (fun ops ->
      let module A = Hsfq_check.Audited.Sfq in
      let sink = Hsfq_check.Invariant.create () in
      let s = A.create ~node:"prop" ~sink () in
      List.iter
        (fun (id, op) ->
          let id = id + 1 in
          match op with
          | 0 | 1 -> A.arrive s ~id ~weight:(float_of_int (1 + (id mod 4)))
          | 2 -> (
            match A.select s with
            | Some sel ->
              A.charge s ~id:sel
                ~service:(float_of_int (1 + id))
                ~runnable:(id mod 2 = 0)
            | None -> ())
          | 3 -> if A.mem s ~id then A.block s ~id
          | 4 -> if A.mem s ~id then A.set_weight s ~id ~weight:(float_of_int id)
          | 5 ->
            let r = 1 + (id mod 6) in
            if r <> id && A.mem s ~id && A.mem s ~id:r then
              A.donate s ~blocked:id ~recipient:r
          | _ ->
            A.revoke s ~blocked:id;
            if A.mem s ~id then A.depart s ~id)
        ops;
      Hsfq_check.Invariant.count sink = 0)

(* Differential oracle: drive the optimized implementation (under the
   full lib/check audit) and the naive reference (lib/check/sfq_reference)
   through identical random op sequences and require tag-for-tag
   agreement after every step. This pins the flat-array representation
   (dense tables, lazy heap deletion, generation validation, compaction)
   to the paper's specification: any divergence in selection order,
   tags, virtual time or bookkeeping fails immediately. *)
(* Interpret one random op sequence against both implementations,
   true iff they agree after every step.  Shared by the QCheck property
   and the Par.sweep batch below. *)
let differential_agrees ops =
  let module A = Hsfq_check.Audited.Sfq in
  let module R = Hsfq_check.Sfq_reference in
  let s = A.create ~node:"diff" () in
  let r = R.create () in
      let feq a b = Float.abs (a -. b) < 1e-9 in
      let agree () =
        A.backlogged s = R.backlogged r
        && feq (A.virtual_time s) (R.virtual_time r)
        && feq (Sfq.max_finish_tag (A.inner s)) (R.max_finish_tag r)
        && List.for_all
             (fun id ->
               A.mem s ~id = R.mem r ~id
               && (not (A.mem s ~id)
                  || feq (A.start_tag s ~id) (R.start_tag r ~id)
                     && feq (A.finish_tag s ~id) (R.finish_tag r ~id)
                     && feq
                          (Sfq.effective_weight_of (A.inner s) ~id)
                          (R.effective_weight_of r ~id)
                     && A.is_runnable s ~id = R.is_runnable r ~id))
             [ 1; 2; 3; 4; 5; 6 ]
      in
      List.for_all
        (fun (id, op) ->
          let id = id + 1 in
          let stepped =
            match op with
            | 0 | 1 ->
              let weight = float_of_int (1 + (id mod 4)) in
              A.arrive s ~id ~weight;
              R.arrive r ~id ~weight;
              true
            | 2 -> (
              match (A.select s, R.select r) with
              | Some a, Some b when a = b ->
                let service = float_of_int (1 + id) in
                let runnable = id mod 2 = 0 in
                A.charge s ~id:a ~service ~runnable;
                R.charge r ~id:b ~service ~runnable;
                true
              | None, None -> true
              | _ -> false (* selections diverged *))
            | 3 ->
              if A.mem s ~id then begin
                A.block s ~id;
                R.block r ~id
              end;
              true
            | 4 ->
              if A.mem s ~id then begin
                let weight = float_of_int id in
                A.set_weight s ~id ~weight;
                R.set_weight r ~id ~weight
              end;
              true
            | 5 ->
              let recipient = 1 + (id mod 6) in
              if recipient <> id && A.mem s ~id && A.mem s ~id:recipient then begin
                A.donate s ~blocked:id ~recipient;
                R.donate r ~blocked:id ~recipient
              end;
              true
            | _ ->
              A.revoke s ~blocked:id;
              R.revoke r ~blocked:id;
              if A.mem s ~id then begin
                A.depart s ~id;
                R.depart r ~id
              end;
              true
          in
          stepped && agree ())
        ops

let prop_matches_naive_reference =
  QCheck.Test.make
    ~name:"optimized Sfq agrees with the naive reference, tag for tag"
    ~count:400
    QCheck.(
      list_of_size (Gen.int_range 1 150) (pair (int_bound 5) (int_bound 6)))
    differential_agrees

(* The same oracle against the allocation-free protocol: the kernel's
   dispatch loop never calls [select]/[arrive]/[charge] — it calls
   [select_id] (sentinel -1 for "no client") with the float payloads
   written through [stage_cell]. Drive that exact shape against the
   naive reference so the unboxed entry points are pinned to the same
   specification as the boxed ones, not just assumed equivalent. *)
let staged_differential_agrees ops =
  let module R = Hsfq_check.Sfq_reference in
  let s = Sfq.create () in
  let cell = Sfq.stage_cell s in
  let r = R.create () in
  let feq a b = Float.abs (a -. b) < 1e-9 in
  let agree () =
    Sfq.backlogged s = R.backlogged r
    && feq (Sfq.virtual_time s) (R.virtual_time r)
    && feq (Sfq.max_finish_tag s) (R.max_finish_tag r)
    && List.for_all
         (fun id ->
           Sfq.mem s ~id = R.mem r ~id
           && (not (Sfq.mem s ~id)
              || feq (Sfq.start_tag s ~id) (R.start_tag r ~id)
                 && feq (Sfq.finish_tag s ~id) (R.finish_tag r ~id)
                 && Sfq.is_runnable s ~id = R.is_runnable r ~id))
         [ 1; 2; 3; 4; 5; 6 ]
  in
  List.for_all
    (fun (id, op) ->
      let id = id + 1 in
      let stepped =
        match op with
        | 0 | 1 ->
          let weight = float_of_int (1 + (id mod 4)) in
          cell.(0) <- weight;
          Sfq.arrive_staged s ~id;
          R.arrive r ~id ~weight;
          true
        | 2 -> (
          let a = Sfq.select_id s in
          match (a, R.select r) with
          | -1, None -> true
          | a, Some b when a = b ->
            let service = float_of_int (1 + id) in
            let runnable = id mod 2 = 0 in
            cell.(0) <- service;
            Sfq.charge_staged s ~id:a ~runnable;
            R.charge r ~id:b ~service ~runnable;
            true
          | _ -> false (* selections diverged *))
        | 3 ->
          if Sfq.mem s ~id then begin
            Sfq.block s ~id;
            R.block r ~id
          end;
          true
        | _ ->
          if Sfq.mem s ~id then begin
            Sfq.depart s ~id;
            R.depart r ~id
          end;
          true
      in
      stepped && agree ())
    ops

let prop_staged_matches_naive_reference =
  QCheck.Test.make
    ~name:
      "sentinel-id/staged protocol agrees with the naive reference, tag for tag"
    ~count:400
    QCheck.(
      list_of_size (Gen.int_range 1 150) (pair (int_bound 5) (int_bound 4)))
    staged_differential_agrees

(* The same differential driven as a seeded batch through the domain
   pool: each task's op sequence comes from its own Prng substream, so
   every verdict is a pure function of (seed, task index) — jobs=1 and
   jobs=4 must agree entry for entry, and every sequence must pass. *)
let test_differential_parallel_batch () =
  let module Prng = Hsfq_engine.Prng in
  let gen_ops rng =
    let n = 1 + Prng.int rng 150 in
    List.init n (fun _ -> (Prng.int rng 6, Prng.int rng 7))
  in
  let run ?backend jobs =
    Hsfq_par.Par.sweep_seeded ?backend ~jobs ~rng:(Prng.create 2026)
      ~tasks:(Array.init 64 (fun i -> i))
      (fun ~rng _i -> differential_agrees (gen_ops rng))
  in
  let serial = run 1 in
  Array.iteri
    (fun i ok ->
      Alcotest.(check bool) (Printf.sprintf "sequence %d agrees" i) true ok)
    serial;
  (* processes before domains: fork is forbidden once a domain has been
     spawned in this executable *)
  Alcotest.(check (array bool))
    "jobs 1 = processes jobs 4" serial
    (run ~backend:Hsfq_par.Par.Processes 4);
  Alcotest.(check (array bool)) "jobs 1 = jobs 4" serial (run 4)

(* ---------------- churn, compaction and slot remapping ----------------- *)

(* Churn storm at Q = 10^4: arrive ten thousand clients in both the
   optimized implementation and the naive reference, tear 7/8 of them
   down in a seed-randomized order — forcing repeated occupancy
   compactions — and require tag-for-tag agreement on every survivor
   plus selection agreement on interleaved decisions. The reference
   (and its backlogged-count bookkeeping) is O(n) per op, so decisions
   are spot-checked every 256 departures rather than per-op, and the
   per-op audit wrapper is left to the smaller differential properties
   above. *)
let prop_churn_storm_matches_reference =
  QCheck.Test.make ~name:"Q=10^4 churn storm matches naive reference"
    ~count:3
    QCheck.(int_range 0 1000)
    (fun seed ->
      let module R = Hsfq_check.Sfq_reference in
      let q = 10_000 in
      let rng = Hsfq_engine.Prng.create (0x9e37 + seed) in
      let s = Sfq.create () in
      let r = R.create () in
      let feq a b = Float.abs (a -. b) < 1e-9 in
      for id = 0 to q - 1 do
        let w = float_of_int (1 + (id mod 7)) in
        Sfq.arrive s ~id ~weight:w;
        R.arrive r ~id ~weight:w
      done;
      let cap_full = Sfq.capacity s in
      (* Fisher-Yates under the seeded stream: the first [departs]
         entries of [order] are the departure sequence, the tail is the
         survivor set. *)
      let order = Array.init q (fun i -> i) in
      for i = q - 1 downto 1 do
        let j = Hsfq_engine.Prng.int_in rng 0 i in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let departs = q - (q / 8) in
      let ok = ref true in
      for k = 0 to departs - 1 do
        let id = order.(k) in
        Sfq.depart s ~id;
        R.depart r ~id;
        if k mod 256 = 0 then
          match (Sfq.select s, R.select r) with
          | Some a, Some b when a = b ->
            Sfq.charge s ~id:a ~service:1. ~runnable:true;
            R.charge r ~id:a ~service:1. ~runnable:true
          | None, None -> ()
          | _ -> ok := false
      done;
      ok := !ok && Sfq.backlogged s = R.backlogged r;
      ok := !ok && feq (Sfq.virtual_time s) (R.virtual_time r);
      for k = departs to q - 1 do
        let id = order.(k) in
        ok :=
          !ok && Sfq.mem s ~id && R.mem r ~id
          && feq (Sfq.start_tag s ~id) (R.start_tag r ~id)
          && feq (Sfq.finish_tag s ~id) (R.finish_tag r ~id)
      done;
      (* The table must have compacted: capacity tracks the survivors,
         not the high-water mark of the storm. *)
      ok := !ok && Sfq.capacity s < cap_full;
      (* Post-storm decisions through the compacted table still agree. *)
      for _ = 1 to 200 do
        match (Sfq.select s, R.select r) with
        | Some a, Some b when a = b ->
          Sfq.charge s ~id:a ~service:1. ~runnable:true;
          R.charge r ~id:a ~service:1. ~runnable:true
        | _ -> ok := false
      done;
      !ok)

(* Capacity must follow live occupancy in both directions: grow with
   arrivals, release on sustained departure (within the 2x hysteresis
   headroom), never fall below the live population, and regrow cleanly
   after a release. *)
let test_capacity_tracks_churn () =
  let s = Sfq.create () in
  for id = 0 to 4095 do
    Sfq.arrive s ~id ~weight:1.
  done;
  let cap_full = Sfq.capacity s in
  let fp_full = Sfq.footprint_words s in
  check_bool "capacity covers the population" true (cap_full >= 4096);
  for id = 0 to 4095 - 256 do
    Sfq.depart s ~id
  done;
  check_int "live after the storm" 256 (Sfq.live_clients s);
  (* One decision lets the lazy heap discard the stale majority it still
     queues for the departed clients (and release their arrays). *)
  (match Sfq.select s with
  | Some id -> Sfq.charge s ~id ~service:1. ~runnable:true
  | None -> Alcotest.fail "expected a runnable client");
  let cap_small = Sfq.capacity s in
  check_bool "capacity released" true (cap_small < cap_full);
  check_bool "capacity still covers live" true
    (cap_small >= Sfq.live_clients s);
  check_bool "footprint released" true (4 * Sfq.footprint_words s < fp_full);
  for id = 10_000 to 10_000 + 4095 do
    Sfq.arrive s ~id ~weight:1.
  done;
  check_bool "capacity regrows" true (Sfq.capacity s >= 4096);
  match Sfq.select s with
  | Some id -> Sfq.charge s ~id ~service:1. ~runnable:true
  | None -> Alcotest.fail "expected a runnable client after regrowth"

(* Slot remapping under audit: slots cached through {!Sfq.slot_of_id}
   must be kept coherent by the on-remap callback across a compaction
   storm, agree with the table in both directions afterwards, and the
   survivors must still dispatch with no invariant trips. *)
let test_remap_keeps_slots_dispatchable () =
  let module A = Hsfq_check.Audited.Sfq in
  let sink = Hsfq_check.Invariant.create () in
  let s = A.create ~node:"remap" ~sink () in
  let inner = A.inner s in
  let cached = Hashtbl.create 64 in
  Sfq.set_on_remap inner (Some (fun ~id ~slot -> Hashtbl.replace cached id slot));
  for id = 0 to 1023 do
    A.arrive s ~id ~weight:(float_of_int (1 + (id mod 4)))
  done;
  (* Depart everything but the multiples of 64: occupancy drops far
     below a quarter of capacity, forcing several compactions. *)
  for id = 0 to 1023 do
    if id mod 64 <> 0 then A.depart s ~id
  done;
  check_bool "compaction fired" true (Hashtbl.length cached > 0);
  check_bool "capacity released" true (Sfq.capacity inner < 1024);
  Hashtbl.iter
    (fun id slot ->
      (* Ids that departed after an earlier compaction linger in the
         cache; only live ones must agree. *)
      if Sfq.mem inner ~id then begin
        check_int (Printf.sprintf "slot_of_id %d" id) slot
          (Sfq.slot_of_id inner ~id);
        check_int
          (Printf.sprintf "id_of_slot %d" slot)
          id
          (Sfq.id_of_slot inner ~slot)
      end)
    cached;
  for _ = 1 to 200 do
    match A.select s with
    | Some id ->
      check_int "selection is a survivor" 0 (id mod 64);
      A.charge s ~id ~service:1. ~runnable:true
    | None -> Alcotest.fail "survivors must stay schedulable"
  done;
  check_int "no invariant violations" 0 (Hsfq_check.Invariant.count sink)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sfq"
    [
      ( "unit",
        [
          Alcotest.test_case "single client tags" `Quick test_single_client;
          Alcotest.test_case "paper's worked example" `Quick test_worked_example_tags;
          Alcotest.test_case "vt while busy" `Quick test_virtual_time_busy;
          Alcotest.test_case "vt while idle" `Quick test_virtual_time_idle;
          Alcotest.test_case "blocked client keeps finish tag" `Quick
            test_blocked_retains_finish_tag;
          Alcotest.test_case "blocked arrive applies the new weight" `Quick
            test_blocked_arrive_applies_weight;
          Alcotest.test_case "arrive is idempotent" `Quick test_arrive_idempotent;
          Alcotest.test_case "weight change affects future quanta" `Quick
            test_weight_change_future_only;
          Alcotest.test_case "charge must match selection" `Quick
            test_select_requires_charge;
          Alcotest.test_case "depart of in-service client rejected" `Quick
            test_depart_in_service_rejected;
          Alcotest.test_case "block of non-in-service client" `Quick test_block_api;
          Alcotest.test_case "depart forgets the client" `Quick test_depart_forgets;
          Alcotest.test_case "reincarnated id ignores stale queue entries" `Quick
            test_reincarnated_id_ignores_stale_entries;
          Alcotest.test_case "invalid arguments rejected" `Quick
            test_invalid_arguments;
          Alcotest.test_case "weight donation (priority inversion)" `Quick
            test_donation;
          Alcotest.test_case "donation replacement" `Quick test_donation_replaced;
          Alcotest.test_case "self-donation rejected" `Quick
            test_self_donation_rejected;
          Alcotest.test_case "deterministic FIFO tie-break" `Quick
            test_fifo_tie_break_deterministic;
          Alcotest.test_case "no drift over a million quanta" `Slow
            test_long_run_no_drift;
          Alcotest.test_case "capacity tracks churn" `Quick
            test_capacity_tracks_churn;
          Alcotest.test_case "remapped slots stay dispatchable" `Quick
            test_remap_keeps_slots_dispatchable;
        ] );
      ( "properties",
        [
          qc prop_fairness_bound;
          qc prop_fairness_bound_n_clients;
          qc prop_proportional_share;
          qc prop_virtual_time_monotonic;
          qc prop_work_conserving;
          qc prop_donations_revocable;
          qc prop_windowed_unfairness;
          qc prop_audited_never_trips;
          qc prop_matches_naive_reference;
          qc prop_staged_matches_naive_reference;
          Alcotest.test_case "differential batch across domains" `Quick
            test_differential_parallel_batch;
          qc prop_churn_storm_matches_reference;
        ] );
    ]
