(* Integration tests for the leaf-class adapters under the kernel:
   SVR4, EDF, GPS-clock, and Fair_leaf-wrapped baselines each driving
   real threads inside the scheduling structure. *)

open Hsfq_engine
open Hsfq_core
open Hsfq_kernel
module W = Workload_intf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let zero_cost =
  { Kernel.default_config with context_switch_cost = 0; sched_cost_per_level = 0 }

let base ?(config = zero_cost) () =
  let sim = Sim.create () in
  let hier = Hierarchy.create () in
  let k = Kernel.create ~config sim hier in
  (sim, hier, k)

let mk_leaf hier name =
  match Hierarchy.mknod hier ~name ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf with
  | Ok id -> id
  | Error e -> failwith e

(* ------------------------------ SVR4 ---------------------------------- *)

let test_svr4_leaf_runs_ts_threads () =
  let _, hier, k = base ~config:{ zero_cost with default_quantum = Time.seconds 1 } () in
  let leaf = mk_leaf hier "svr4" in
  let lf, h = Leaf_sched.Svr4_leaf.make () in
  Kernel.install_leaf k leaf lf;
  let spawn name =
    let tid = Kernel.spawn k ~name ~leaf (W.forever_compute (Time.seconds 10)) in
    Leaf_sched.Svr4_leaf.add h ~tid Hsfq_sched.Svr4.Ts;
    Kernel.start k tid;
    tid
  in
  let a = spawn "a" and b = spawn "b" in
  Kernel.run_until k (Time.seconds 4);
  (* Equal-priority CPU hogs end up sharing roughly equally over a long
     run (dispatch-table cycling notwithstanding). *)
  let ca = Kernel.cpu_time k a and cb = Kernel.cpu_time k b in
  (* Up to one 200 ms prio-0 quantum may still be in flight at the
     horizon. *)
  check_bool "fully used" true
    (Time.seconds 4 - (ca + cb) <= Time.milliseconds 200);
  check_bool "both in the same ballpark" true
    (float_of_int (Int.min ca cb) /. float_of_int (Int.max ca cb) > 0.5)

let test_svr4_leaf_rt_preempts_in_kernel () =
  let _, hier, k = base () in
  let leaf = mk_leaf hier "svr4" in
  let lf, h = Leaf_sched.Svr4_leaf.make () in
  Kernel.install_leaf k leaf lf;
  let ts = Kernel.spawn k ~name:"ts" ~leaf (W.forever_compute (Time.seconds 10)) in
  Leaf_sched.Svr4_leaf.add h ~tid:ts Hsfq_sched.Svr4.Ts;
  Kernel.start k ts;
  let wl, c =
    Hsfq_workload.Periodic.make ~period:(Time.milliseconds 40)
      ~cost:(Time.milliseconds 2) ~phase:(Time.milliseconds 13) ()
  in
  let rt = Kernel.spawn k ~name:"rt" ~leaf wl in
  Leaf_sched.Svr4_leaf.add h ~tid:rt (Hsfq_sched.Svr4.Rt 5);
  Kernel.start k rt;
  Kernel.run_until k (Time.seconds 2);
  check_int "no RT misses" 0 (Hsfq_workload.Periodic.misses c);
  check_bool "RT wakeups preempt TS immediately" true
    (int_of_float (Stats.max_value (Kernel.latency_stats k rt)) <= 1)

(* ------------------------------- EDF ---------------------------------- *)

let test_edf_leaf_meets_feasible_deadlines () =
  let _, hier, k = base () in
  let leaf = mk_leaf hier "edf" in
  let lf, h = Leaf_sched.Edf_leaf.make ~quantum:(Time.milliseconds 5) () in
  Kernel.install_leaf k leaf lf;
  (* Two periodic tasks, total utilization 0.75 — EDF-feasible. *)
  let spawn name ~period ~cost =
    let wl, c = Hsfq_workload.Periodic.make ~period ~cost () in
    let tid = Kernel.spawn k ~name ~leaf wl in
    Leaf_sched.Edf_leaf.add h ~tid ~relative_deadline:period;
    Kernel.start k tid;
    c
  in
  let c1 = spawn "t1" ~period:(Time.milliseconds 40) ~cost:(Time.milliseconds 10) in
  let c2 = spawn "t2" ~period:(Time.milliseconds 100) ~cost:(Time.milliseconds 50) in
  Kernel.run_until k (Time.seconds 4);
  check_int "t1 misses" 0 (Hsfq_workload.Periodic.misses c1);
  check_int "t2 misses" 0 (Hsfq_workload.Periodic.misses c2);
  check_bool "both ran many rounds" true
    (Hsfq_workload.Periodic.completed c1 > 90
    && Hsfq_workload.Periodic.completed c2 > 35)

(* --------------------------- GPS adapters ----------------------------- *)

let test_gps_leaf_proportional_at_full_capacity () =
  let _, hier, k = base () in
  let leaf = mk_leaf hier "wfq-rt" in
  let lf, h =
    Leaf_sched.Gps_leaf.make ~order:Hsfq_sched.Gps_vt.Finish_tags
      ~quantum:(Time.milliseconds 20) ()
  in
  Kernel.install_leaf k leaf lf;
  let spawn name w =
    let tid = Kernel.spawn k ~name ~leaf (W.forever_compute (Time.seconds 100)) in
    Leaf_sched.Gps_leaf.add h ~tid ~weight:w;
    Kernel.start k tid;
    tid
  in
  let a = spawn "a" 1. and b = spawn "b" 3. in
  Kernel.run_until k (Time.seconds 4);
  (* With the full CPU (no sibling fluctuation) wfq-rt is weight-fair. *)
  let ratio = float_of_int (Kernel.cpu_time k b) /. float_of_int (Kernel.cpu_time k a) in
  check_bool "1:3 at full capacity" true (Float.abs (ratio -. 3.) < 0.1)

(* --------------------------- Fair_leaf -------------------------------- *)

module Stride_leaf = Leaf_sched.Fair_leaf (Hsfq_sched.Stride)

let test_fair_leaf_stride_in_kernel () =
  let _, hier, k = base () in
  let leaf = mk_leaf hier "stride" in
  let lf, h = Stride_leaf.make ~quantum:(Time.milliseconds 10) () in
  Kernel.install_leaf k leaf lf;
  let spawn name w =
    let tid = Kernel.spawn k ~name ~leaf (W.forever_compute (Time.seconds 100)) in
    Stride_leaf.add h ~tid ~weight:w;
    Kernel.start k tid;
    tid
  in
  let a = spawn "a" 2. and b = spawn "b" 5. in
  Kernel.run_until k (Time.seconds 2);
  let ratio = float_of_int (Kernel.cpu_time k b) /. float_of_int (Kernel.cpu_time k a) in
  check_bool "2:5 stride split" true (Float.abs (ratio -. 2.5) < 0.1);
  (* set_weight reshapes the allocation going forward. *)
  Stride_leaf.set_weight h ~tid:a ~weight:5.;
  let a0 = Kernel.cpu_time k a and b0 = Kernel.cpu_time k b in
  Kernel.run_until k (Time.seconds 4);
  let da = Kernel.cpu_time k a - a0 and db = Kernel.cpu_time k b - b0 in
  check_bool "equal after reweight" true
    (Float.abs ((float_of_int db /. float_of_int da) -. 1.) < 0.1)

(* --------------------- mixed classes in one tree ---------------------- *)

let test_three_heterogeneous_leaves () =
  (* SFQ + SVR4 + EDF leaves under one root, weights 2:1:1 — each class
     gets its node share while scheduling internally its own way. *)
  let _, hier, k = base () in
  let mk name w =
    match Hierarchy.mknod hier ~name ~parent:Hierarchy.root ~weight:w Hierarchy.Leaf with
    | Ok id -> id
    | Error e -> failwith e
  in
  let l_sfq = mk "sfq" 2. and l_svr4 = mk "svr4" 1. and l_edf = mk "edf" 1. in
  let lf1, sfq = Leaf_sched.Sfq_leaf.make () in
  let lf2, svr4 = Leaf_sched.Svr4_leaf.make () in
  let lf3, edf = Leaf_sched.Edf_leaf.make ~quantum:(Time.milliseconds 5) () in
  Kernel.install_leaf k l_sfq lf1;
  Kernel.install_leaf k l_svr4 lf2;
  Kernel.install_leaf k l_edf lf3;
  let t1 = Kernel.spawn k ~name:"s" ~leaf:l_sfq (W.forever_compute (Time.seconds 100)) in
  Leaf_sched.Sfq_leaf.add sfq ~tid:t1 ~weight:1.;
  Kernel.start k t1;
  let t2 = Kernel.spawn k ~name:"v" ~leaf:l_svr4 (W.forever_compute (Time.seconds 100)) in
  Leaf_sched.Svr4_leaf.add svr4 ~tid:t2 Hsfq_sched.Svr4.Ts;
  Kernel.start k t2;
  let t3 = Kernel.spawn k ~name:"e" ~leaf:l_edf (W.forever_compute (Time.seconds 100)) in
  Leaf_sched.Edf_leaf.add edf ~tid:t3 ~relative_deadline:(Time.milliseconds 50);
  Kernel.start k t3;
  Kernel.run_until k (Time.seconds 4);
  let c1 = Kernel.cpu_time k t1 and c2 = Kernel.cpu_time k t2 and c3 = Kernel.cpu_time k t3 in
  check_int "node shares 2:1:1 — sfq half" (Time.seconds 2) c1;
  check_int "svr4 quarter" (Time.seconds 1) c2;
  check_int "edf quarter" (Time.seconds 1) c3

let () =
  Alcotest.run "leaf-adapters"
    [
      ( "svr4",
        [
          Alcotest.test_case "TS threads share" `Quick test_svr4_leaf_runs_ts_threads;
          Alcotest.test_case "RT preempts in kernel" `Quick
            test_svr4_leaf_rt_preempts_in_kernel;
        ] );
      ( "edf",
        [
          Alcotest.test_case "feasible set meets deadlines" `Quick
            test_edf_leaf_meets_feasible_deadlines;
        ] );
      ( "gps",
        [
          Alcotest.test_case "wfq-rt proportional at full capacity" `Quick
            test_gps_leaf_proportional_at_full_capacity;
        ] );
      ( "fair-leaf",
        [
          Alcotest.test_case "stride under the kernel" `Quick
            test_fair_leaf_stride_in_kernel;
        ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "three classes, one tree" `Quick
            test_three_heterogeneous_leaves;
        ] );
    ]
