(* Tests for the lifecycle torture driver (lib/torture): determinism,
   replay, shrinking, and clean audited runs across seeds. *)

open Hsfq_engine
module T = Hsfq_torture.Torture

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_run_clean () =
  let o = T.run (T.config ~ops:2000 7) in
  check_bool "clean" false (T.failed o);
  check_int "ran everything" 2000 o.T.ops_run;
  check_int "trace covers every op" 2000 (List.length o.T.trace)

let test_deterministic_and_replayable () =
  let cfg = T.config ~ops:1500 11 in
  let a = T.run cfg in
  let b = T.run cfg in
  check_bool "same config gives the same trace" true (a.T.trace = b.T.trace);
  let r = T.replay cfg a.T.trace in
  check_bool "replay clean" false (T.failed r);
  check_int "replay runs the whole trace" (List.length a.T.trace) r.T.ops_run

let test_shrink_of_passing_trace_is_identity () =
  let cfg = T.config ~ops:300 3 in
  let o = T.run cfg in
  check_bool "clean" false (T.failed o);
  check_bool "passing traces shrink to themselves" true
    (T.shrink cfg o.T.trace = o.T.trace)

(* A hand-written trace exercising every op constructor, including the
   slot-index interpretation of thread/leaf operands. *)
let test_handwritten_trace () =
  let cfg = T.config 5 in
  let ops =
    [
      T.Spawn { leaf = 0; weight = 3; profile = 0 };
      T.Start 0;
      T.Advance (Time.milliseconds 5);
      T.Spawn { leaf = 1; weight = 2; profile = 1 };
      T.Start 1;
      T.Suspend 0;
      T.Advance (Time.milliseconds 3);
      T.Resume 0;
      T.Move { th = 0; leaf = 1 };
      T.Interrupt (Time.microseconds 80);
      T.Mknod { group = 0; weight = 4 };
      T.Advance (Time.milliseconds 2);
      T.Kill 1;
      T.Rmnod 99;
      T.Advance (Time.milliseconds 2);
    ]
  in
  let o = T.replay cfg ops in
  check_bool "clean" false (T.failed o);
  check_int "all ops applied" (List.length ops) o.T.ops_run

let test_op_printers_total () =
  let ops =
    [
      T.Advance (Time.milliseconds 1);
      T.Spawn { leaf = 0; weight = 1; profile = 2 };
      T.Start 4;
      T.Kill 4;
      T.Move { th = 1; leaf = 2 };
      T.Suspend 1;
      T.Resume 1;
      T.Interrupt (Time.microseconds 10);
      T.Mknod { group = 1; weight = 2 };
      T.Rmnod 3;
    ]
  in
  List.iter (fun op -> check_bool "printable" true (T.op_to_string op <> "")) ops;
  check_bool "trace printer newline-joins" true
    (String.contains (T.trace_to_string ops) '\n');
  let o = T.run (T.config ~ops:50 1) in
  check_bool "summary non-empty" true (T.outcome_summary o <> "")

(* The audit machinery is live even under sparse auditing. *)
let test_audit_period () =
  let o = T.run (T.config ~ops:2000 ~audit_period:64 13) in
  check_bool "clean under sparse audits" false (T.failed o)

(* Seeds that once crashed the kernel, kept as fixed regressions.  Seed
   2007 found the boundary race where a preempting wake lands exactly on
   a thread's final segment completion and beats the completion event,
   requeueing a thread with no work left. *)
let test_regression_seeds () =
  List.iter
    (fun seed ->
      let o = T.run (T.config ~ops:800 seed) in
      if T.failed o then
        Alcotest.failf "seed %d regressed: %s" seed (T.outcome_summary o))
    [ 31; 422; 2007 ]

let prop_random_seeds_clean =
  QCheck.Test.make ~name:"torture: random seeds run clean" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed -> not (T.failed (T.run (T.config ~ops:800 seed))))

(* Giant randomized structure: prepopulate builds tens of thousands of
   leaves across groups (through the reserve_children bulk path) before
   the op stream starts, and the periodic full audits must stay clean at
   that scale. *)
let test_giant_prepopulated_run () =
  let cfg =
    T.config ~ops:300 ~audit_period:100 ~max_leaves:20_000 ~max_spawns:64
      ~prepopulate:20_000 23
  in
  let o = T.run cfg in
  check_bool "clean at 20k leaves" false (T.failed o);
  check_int "ran everything" 300 o.T.ops_run

(* ------------------------------------------------------------------ *)
(* Multiprocessor runs: the same generate-and-audit loop at cpus > 1.  *)
(* Every op stream now races cross-CPU migrations, per-CPU interrupt   *)
(* storms and targeted Interrupt_on ops against the per-CPU audit      *)
(* rules (one dispatch per CPU, no thread on two CPUs, donation        *)
(* ledger coherence).                                                  *)
(* ------------------------------------------------------------------ *)

let test_multicpu_seeds () =
  List.iter
    (fun (cpus, seed) ->
      let o = T.run (T.config ~ops:1200 ~cpus seed) in
      if T.failed o then
        Alcotest.failf "cpus=%d seed %d failed: %s" cpus seed
          (T.outcome_summary o))
    [ (2, 1); (2, 17); (4, 5); (4, 42); (8, 3) ]

let test_multicpu_deterministic () =
  let cfg = T.config ~ops:1000 ~cpus:4 29 in
  let a = T.run cfg in
  let b = T.run cfg in
  check_bool "multi-CPU runs are reproducible" true (a.T.trace = b.T.trace);
  let r = T.replay cfg a.T.trace in
  check_bool "multi-CPU replay clean" false (T.failed r)

let prop_multicpu_random_seeds_clean =
  QCheck.Test.make ~name:"torture: multi-CPU random seeds run clean" ~count:8
    QCheck.(pair (int_range 2 4) (int_range 0 10_000))
    (fun (cpus, seed) -> not (T.failed (T.run (T.config ~ops:600 ~cpus seed))))

(* ------------------------------------------------------------------ *)
(* P=1 equivalence: the multiprocessor kernel must be invisible at     *)
(* cpus = 1.  golden/p1_equiv.digests was generated by the kernel      *)
(* BEFORE the CPU-set refactor (bin/digest_anchor.ml is the            *)
(* regenerator); every torture trace and figure CSV recomputed here    *)
(* with an explicit ~cpus:1 must hash to the same bytes.  Obs trace    *)
(* bytes are anchored the same way by test_obs's golden/*.trace        *)
(* comparisons.                                                        *)
(* ------------------------------------------------------------------ *)

let test_p1_equivalence () =
  let golden =
    let ic = open_in "golden/p1_equiv.digests" in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let torture_lines =
    List.map
      (fun seed ->
        let o = T.run (T.config ~ops:2000 ~cpus:1 seed) in
        let body = T.trace_to_string o.T.trace ^ "\n" ^ T.outcome_summary o in
        Printf.sprintf "torture seed=%d ops=2000 %s" seed
          (Digest.to_hex (Digest.string body)))
      [ 1; 2; 3; 5; 8; 13 ]
  in
  let csv_lines =
    List.map
      (fun id ->
        match Hsfq_experiments.Csv_export.export id with
        | Error e -> Printf.sprintf "csv %s ERROR %s" id e
        | Ok files ->
          let buf = Buffer.create 4096 in
          List.iter
            (fun (name, contents) ->
              Buffer.add_string buf name;
              Buffer.add_char buf '\n';
              Buffer.add_string buf contents)
            files;
          Printf.sprintf "csv %s %s" id
            (Digest.to_hex (Digest.string (Buffer.contents buf))))
      (Hsfq_experiments.Csv_export.exportable ())
  in
  Alcotest.(check (list string))
    "cpus=1 digests match the pre-refactor anchor" golden
    (torture_lines @ csv_lines)

(* Departure storm through the driver: prepopulate a big structure, then
   replay a pure-Rmnod trace retiring 7/8 of the leaves. Every group's
   SFQ falls far below quarter occupancy, so parent-table compactions
   (and node-array reclamation) fire repeatedly under the periodic
   audit — this is the driver-level version of the unit compaction
   tests. *)
let test_departure_storm_compacts_clean () =
  let n = 8192 in
  let cfg = T.config ~audit_period:512 ~max_leaves:n ~prepopulate:n 41 in
  let ops = List.init (n - (n / 8)) (fun i -> T.Rmnod i) in
  let o = T.replay cfg ops in
  check_bool "clean through the storm" false (T.failed o);
  check_int "every rmnod applied" (List.length ops) o.T.ops_run

let () =
  Alcotest.run "torture"
    [
      ( "driver",
        [
          Alcotest.test_case "clean seeded run" `Quick test_run_clean;
          Alcotest.test_case "deterministic and replayable" `Quick
            test_deterministic_and_replayable;
          Alcotest.test_case "shrink keeps passing traces" `Quick
            test_shrink_of_passing_trace_is_identity;
          Alcotest.test_case "hand-written trace" `Quick test_handwritten_trace;
          Alcotest.test_case "printers" `Quick test_op_printers_total;
          Alcotest.test_case "sparse audit period" `Quick test_audit_period;
          Alcotest.test_case "once-crashing seeds" `Quick test_regression_seeds;
          Alcotest.test_case "giant prepopulated run" `Slow
            test_giant_prepopulated_run;
          Alcotest.test_case "departure storm compacts" `Quick
            test_departure_storm_compacts_clean;
        ] );
      ( "multiprocessor",
        [
          Alcotest.test_case "multi-CPU seeds run clean" `Quick
            test_multicpu_seeds;
          Alcotest.test_case "multi-CPU deterministic + replayable" `Quick
            test_multicpu_deterministic;
          Alcotest.test_case "P=1 equivalence (pre-refactor digests)" `Quick
            test_p1_equivalence;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_seeds_clean;
          QCheck_alcotest.to_alcotest prop_multicpu_random_seeds_clean;
        ] );
    ]
