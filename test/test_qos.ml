(* Tests for admission control and the QoS manager (lib/qos). *)

open Hsfq_core
open Hsfq_qos

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let task cost period = Admission.{ cost; period }

(* --------------------------- admission ------------------------------- *)

let test_utilization () =
  check_float "sum of c/p" 0.75
    (Admission.utilization [ task 1. 4.; task 1. 2. ]);
  check_float "empty" 0. (Admission.utilization [])

let test_edf_admission () =
  check_bool "under capacity" true
    (Admission.edf_admissible ~capacity:1. [ task 1. 2.; task 1. 4. ]);
  check_bool "exactly full" true
    (Admission.edf_admissible ~capacity:1. [ task 1. 2.; task 2. 4. ]);
  check_bool "overloaded" false
    (Admission.edf_admissible ~capacity:1. [ task 1. 2.; task 2.1 4. ]);
  check_bool "fractional capacity" false
    (Admission.edf_admissible ~capacity:0.5 [ task 1. 2.; task 0.1 4. ])

let test_rm_utilization_bound () =
  check_float "n=1" 1.0 (Admission.rm_utilization_bound 1);
  check_float "n=2" (2. *. (sqrt 2. -. 1.)) (Admission.rm_utilization_bound 2);
  check_bool "decreasing towards ln 2" true
    (Admission.rm_utilization_bound 10 > 0.69
    && Admission.rm_utilization_bound 10 < Admission.rm_utilization_bound 2)

let test_rm_utilization_test () =
  check_bool "well under bound" true
    (Admission.rm_admissible_utilization ~capacity:1. [ task 1. 10.; task 1. 20. ]);
  check_bool "above bound" false
    (Admission.rm_admissible_utilization ~capacity:1. [ task 5. 10.; task 8. 20. ])

let test_rm_rta_exact () =
  (* The classic example where utilization (0.9) is above the n=2 bound
     (0.828) but the set is still RM-schedulable: RTA accepts it. *)
  let tasks = [ task 2. 4.; task 2. 5. ] in
  check_bool "utilization test rejects" false
    (Admission.rm_admissible_utilization ~capacity:1. tasks);
  check_bool "RTA accepts" true (Admission.rm_admissible_rta ~capacity:1. tasks);
  (* Push it over: c2 = 3 makes the response of task 2 exceed 5. *)
  check_bool "RTA rejects infeasible" false
    (Admission.rm_admissible_rta ~capacity:1. [ task 2. 4.; task 3. 5. ]);
  (* The same set on a half-speed CPU is infeasible. *)
  check_bool "fractional capacity scales costs" false
    (Admission.rm_admissible_rta ~capacity:0.5 tasks)

let test_admission_capacity_boundary () =
  (* The admission tests are inclusive: a load that fills the capacity
     exactly is admitted, and one epsilon beyond it is refused. *)
  let full = [ task 1. 2.; task 1. 4. ] (* U = 0.75 *) in
  check_bool "EDF at exact capacity" true
    (Admission.edf_admissible ~capacity:0.75 full);
  check_bool "EDF epsilon over" false
    (Admission.edf_admissible ~capacity:0.75 (task 1e-9 1. :: full));
  (* RM utilization test at exactly the Liu–Layland bound. *)
  let b2 = Admission.rm_utilization_bound 2 in
  check_bool "RM at exact bound" true
    (Admission.rm_admissible_utilization ~capacity:1.
       [ task (b2 /. 2.) 1.; task b2 2. ]);
  check_bool "RM epsilon over bound" false
    (Admission.rm_admissible_utilization ~capacity:1.
       [ task ((b2 /. 2.) +. 1e-6) 1.; task b2 2. ]);
  (* Statistical admission, zero variance: mean rate exactly at capacity. *)
  let soft mean sigma speriod = Admission.{ mean; sigma; speriod } in
  check_bool "statistical at exact capacity" true
    (Admission.statistical_admissible ~capacity:0.25 ~quantile:2.33
       [ soft 0.5 0. 2. ]);
  check_bool "statistical epsilon over" false
    (Admission.statistical_admissible ~capacity:0.25 ~quantile:2.33
       [ soft (0.5 +. 1e-6) 0. 2. ])

let test_statistical_admission () =
  let soft mean sigma speriod = Admission.{ mean; sigma; speriod } in
  (* Mean rate 0.3, no variance: admitted at capacity 0.3. *)
  check_bool "deterministic fits" true
    (Admission.statistical_admissible ~capacity:0.3 ~quantile:2.33
       [ soft 0.3 0. 1. ]);
  (* Adding variance pushes it over the same capacity. *)
  check_bool "variance pushes over" false
    (Admission.statistical_admissible ~capacity:0.3 ~quantile:2.33
       [ soft 0.3 0.05 1. ]);
  (* A higher quantile (stricter guarantee) admits less. *)
  let tasks = [ soft 0.2 0.03 1.; soft 0.2 0.03 1. ] in
  check_bool "loose quantile admits" true
    (Admission.statistical_admissible ~capacity:0.5 ~quantile:1. tasks);
  check_bool "strict quantile rejects" false
    (Admission.statistical_admissible ~capacity:0.5 ~quantile:3. tasks)

(* ---------------------------- manager -------------------------------- *)

let test_manager_structure () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  Alcotest.(check string) "hard node" "/hard-rt" (Hierarchy.name_of h (Manager.hard_node m));
  Alcotest.(check string) "soft node" "/soft-rt" (Hierarchy.name_of h (Manager.soft_node m));
  Alcotest.(check string) "best-effort node" "/best-effort"
    (Hierarchy.name_of h (Manager.best_effort_node m));
  (* Figure 2 weights 1:3:6. *)
  check_float "hard share" 0.1 (Manager.share_of m (Manager.hard_node m));
  check_float "soft share" 0.3 (Manager.share_of m (Manager.soft_node m));
  check_float "best share" 0.6 (Manager.share_of m (Manager.best_effort_node m))

let test_manager_hard_admission () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  (match Manager.request_hard m ~name:"a" ~cost:0.002 ~period:0.05 with
  | Ok g -> check_float "grant share" 0.1 g.Manager.share
  | Error e -> Alcotest.failf "should admit: %s" e);
  check_bool "too big rejected" true
    (Result.is_error (Manager.request_hard m ~name:"big" ~cost:0.04 ~period:0.05));
  check_bool "duplicate rejected" true
    (Result.is_error (Manager.request_hard m ~name:"a" ~cost:0.001 ~period:0.05));
  check_float "utilization tracked" 0.04 (Manager.hard_utilization m);
  Manager.release m ~name:"a";
  check_float "released" 0. (Manager.hard_utilization m);
  check_bool "admits again after release" true
    (Result.is_ok (Manager.request_hard m ~name:"a2" ~cost:0.002 ~period:0.05))

let test_manager_hard_exact_fill () =
  (* One task consuming the hard class's entire 10% share is admitted;
     any further request — however small — is refused until a release. *)
  let h = Hierarchy.create () in
  let m = Manager.create h in
  (match Manager.request_hard m ~name:"full" ~cost:0.005 ~period:0.05 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "exact fill should admit: %s" e);
  check_float "class exactly full" 0.1 (Manager.hard_utilization m);
  check_bool "epsilon more refused" true
    (Result.is_error
       (Manager.request_hard m ~name:"eps" ~cost:1e-5 ~period:0.05));
  Manager.release m ~name:"full";
  check_bool "full share admissible again" true
    (Result.is_ok (Manager.request_hard m ~name:"full2" ~cost:0.005 ~period:0.05))

let test_manager_soft_admission_and_growth () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  let req name = Manager.request_soft m ~name ~mean:0.003 ~sigma:0.001 ~period:0.0333 in
  check_bool "first decoder admitted" true (Result.is_ok (req "d1"));
  check_bool "second decoder admitted" true (Result.is_ok (req "d2"));
  check_bool "third rejected at weight 3" true (Result.is_error (req "d3"));
  let before = Manager.share_of m (Manager.soft_node m) in
  Manager.grow_soft_for_demand m;
  let after = Manager.share_of m (Manager.soft_node m) in
  check_bool "share grew" true (after > before);
  check_bool "third admitted after growth" true (Result.is_ok (req "d3"))

let test_manager_best_effort () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  let g1 = Result.get_ok (Manager.request_best_effort m ~user:"alice") in
  let g2 = Result.get_ok (Manager.request_best_effort m ~user:"bob") in
  let g1' = Result.get_ok (Manager.request_best_effort m ~user:"alice") in
  check_bool "same node for same user" true (g1.Manager.node = g1'.Manager.node);
  check_bool "distinct users distinct nodes" true (g1.Manager.node <> g2.Manager.node);
  (* Two equal-weight users under the 0.6 class: 0.3 each. *)
  check_float "per-user share" 0.3 (Manager.share_of m g2.Manager.node);
  Alcotest.(check string) "named like the paper" "/best-effort/alice"
    (Hierarchy.name_of h g1.Manager.node)

let test_manager_soft_release () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  let req name = Manager.request_soft m ~name ~mean:0.003 ~sigma:0.001 ~period:0.0333 in
  check_bool "d1" true (Result.is_ok (req "d1"));
  check_bool "d2" true (Result.is_ok (req "d2"));
  check_bool "d3 rejected" true (Result.is_error (req "d3"));
  Manager.release m ~name:"d1";
  check_bool "capacity freed for d3" true (Result.is_ok (req "d3"));
  Alcotest.(check (float 1e-9)) "utilization reflects release"
    (2. *. (0.003 /. 0.0333))
    (Manager.soft_mean_utilization m)

let test_manager_bad_username () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  check_bool "slash in username rejected" true
    (Result.is_error (Manager.request_best_effort m ~user:"a/b"));
  check_bool "empty username rejected" true
    (Result.is_error (Manager.request_best_effort m ~user:""))

let test_manager_set_class_weight () =
  let h = Hierarchy.create () in
  let m = Manager.create h in
  Manager.set_class_weight m `Hard 10.;
  (* Weights now 10:3:6. *)
  check_float "hard share raised" (10. /. 19.)
    (Manager.share_of m (Manager.hard_node m))

let () =
  Alcotest.run "qos"
    [
      ( "admission",
        [
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "EDF test" `Quick test_edf_admission;
          Alcotest.test_case "RM utilization bound values" `Quick
            test_rm_utilization_bound;
          Alcotest.test_case "RM utilization test" `Quick test_rm_utilization_test;
          Alcotest.test_case "RM response-time analysis" `Quick test_rm_rta_exact;
          Alcotest.test_case "statistical admission" `Quick test_statistical_admission;
          Alcotest.test_case "exact capacity boundary" `Quick
            test_admission_capacity_boundary;
        ] );
      ( "manager",
        [
          Alcotest.test_case "Figure 2 structure" `Quick test_manager_structure;
          Alcotest.test_case "hard admission lifecycle" `Quick
            test_manager_hard_admission;
          Alcotest.test_case "hard class exact fill" `Quick
            test_manager_hard_exact_fill;
          Alcotest.test_case "soft admission and growth" `Quick
            test_manager_soft_admission_and_growth;
          Alcotest.test_case "best effort users" `Quick test_manager_best_effort;
          Alcotest.test_case "dynamic class weights" `Quick
            test_manager_set_class_weight;
          Alcotest.test_case "soft release frees capacity" `Quick
            test_manager_soft_release;
          Alcotest.test_case "invalid usernames rejected" `Quick
            test_manager_bad_username;
        ] );
    ]
