(* Tests for the lint stack (lib/staticlint).

   Three layers, mirroring the tools:
   - the token lexer and its rules (hsfq_lint), including the comment /
     quoted-string edge cases and the toplevel-mutable state machine;
   - whitelist semantics: duplicates, malformed lines, stale entries;
   - the typed passes (hsfq_tlint), driven by tiny fixture modules
     typechecked in-process with the same compiler-libs the analyzer
     reads .cmt files with. *)

module Lexlint = Hsfq_staticlint.Lexlint
module Whitelist = Hsfq_staticlint.Whitelist
module Finding = Hsfq_staticlint.Finding
module Cmt_index = Hsfq_staticlint.Cmt_index
module Mutability = Hsfq_staticlint.Mutability
module Inventory = Hsfq_staticlint.Inventory
module Reach = Hsfq_staticlint.Reach
module Hotrules = Hsfq_staticlint.Hotrules
module Allocpass = Hsfq_staticlint.Allocpass
module Typedlint = Hsfq_staticlint.Typedlint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let toks src = List.map (fun (_, _, _, t) -> t) (Lexlint.tokens src)

let has_rule rule fs =
  List.exists (fun (f : Finding.t) -> String.equal f.rule rule) fs

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_tokens_basic () =
  Alcotest.(check (list string))
    "dotted paths glue into one token"
    [ "let"; "x"; "Int.compare"; "a"; "b" ]
    (toks "let x = Int.compare a b")

let test_tokens_comments () =
  Alcotest.(check (list string))
    "nested comments skipped" [ "a"; "b" ]
    (toks "a (* one (* two *) still comment *) b");
  Alcotest.(check (list string))
    "string inside comment can hide *)" [ "a"; "b" ]
    (toks "a (* \" *) \" *) b")

let test_tokens_quoted_string_in_comment () =
  (* the historical lexer bug: a {id|...|id} literal inside a comment
     containing [* )] ended the comment early *)
  Alcotest.(check (list string))
    "quoted string inside comment can hide *)" [ "a"; "b" ]
    (toks "a (* {q| *) |q} *) b");
  Alcotest.(check (list string))
    "plain brace inside comment is not a quoted string" [ "a"; "b" ]
    (toks "a (* { not a literal } *) b")

let test_tokens_quoted_string_toplevel () =
  Alcotest.(check (list string))
    "quoted string literal is opaque" [ "x"; "y" ]
    (toks "x {id|let hidden = ref 0|id} y");
  Alcotest.(check (list string))
    "empty-id quoted string" [ "x"; "y" ]
    (toks "x {|let hidden = compare|} y")

let test_tokens_char_literals () =
  Alcotest.(check (list string))
    "char literals don't open strings" [ "a"; "b"; "c" ]
    (toks "a '\\'' b '\"' c");
  Alcotest.(check (list string))
    "type variable quote is not a char" [ "a"; "list"; "t" ]
    (toks "'a list t")

let test_tokens_ops () =
  match Lexlint.tokens "x <- y" with
  | [ _; (_, _, op, tok) ] ->
    Alcotest.(check string) "op run carried" "<-" op;
    Alcotest.(check string) "token after op" "y" tok
  | other -> Alcotest.failf "unexpected token count: %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Token rules *)

let findings_in ~file src = Lexlint.check_tokens ~file src

let test_rule_poly_compare () =
  let fs = findings_in ~file:"lib/x/a.ml" "let r = compare a b" in
  check_bool "bare compare flagged" true (has_rule "poly-compare" fs);
  let fs = findings_in ~file:"lib/x/a.ml" "let compare = Int.compare" in
  check_int "definition exempt" 0 (List.length fs);
  let fs = findings_in ~file:"lib/x/a.ml" "let r = f ~min:3 ~max:9" in
  check_int "labeled args exempt" 0 (List.length fs)

let test_rule_leaf_retarget () =
  let fs = findings_in ~file:"lib/x/a.ml" "let f th l = th.leaf <- l" in
  check_bool "leaf assignment flagged" true (has_rule "leaf-retarget" fs);
  let fs = findings_in ~file:"lib/x/a.ml" "let f th l = th.left <- l" in
  check_int "other fields fine" 0 (List.length fs)

let test_rule_assert () =
  let fs = findings_in ~file:"lib/x/a.ml" "let f x = assert (x > 0)" in
  check_bool "assert on input flagged" true (has_rule "assert-validation" fs);
  let fs = findings_in ~file:"lib/x/a.ml" "let f () = assert false" in
  check_int "assert false fine" 0 (List.length fs);
  let fs = findings_in ~file:"lib/x/a.ml" "let f () = assert" in
  check_bool "assert at EOF still reported" true
    (has_rule "assert-validation" fs)

let test_rule_toplevel_mutable () =
  let flags src = has_rule "toplevel-mutable" (findings_in ~file:"lib/engine/a.ml" src) in
  check_bool "top-level ref flagged" true (flags "let cell = ref 0");
  check_bool "top-level Hashtbl.create flagged" true
    (flags "let tbl = Hashtbl.create 16");
  check_bool "type annotation tracked through state 3" true
    (flags "let cell : int ref = ref 0");
  check_bool "function body ref is fine" false (flags "let f () =\n  ref 0");
  check_bool "let rec with params is a function, fine" false
    (flags "let rec f x = ref 0");
  check_bool "indented (local) let is fine" false (flags "  let cell = ref 0");
  check_bool "out-of-scope directory is fine" false
    (has_rule "toplevel-mutable"
       (findings_in ~file:"lib/core/a.ml" "let cell = ref 0"))

let test_rule_hot_hashtbl_scope () =
  check_bool "hot module flagged" true
    (has_rule "hot-path-hashtbl"
       (findings_in ~file:"lib/core/sfq.ml" "let t = Hashtbl.create 4"));
  check_bool "cold module fine" false
    (has_rule "hot-path-hashtbl"
       (findings_in ~file:"lib/qos/manager.ml" "let t = Hashtbl.create 4"))

(* ------------------------------------------------------------------ *)
(* Whitelist *)

let test_whitelist_duplicates () =
  let src = "r lib/a.ml first justification\nr lib/a.ml second copy\n" in
  match Whitelist.load_string ~path:"wl" src with
  | Ok _ -> Alcotest.fail "duplicate entries must be a load error"
  | Error msg ->
    check_bool "names the duplicate" true
      (let looking = "duplicate whitelist entry (r lib/a.ml)" in
       let ln = String.length looking in
       let n = String.length msg in
       let rec go i = i + ln <= n && (String.equal (String.sub msg i ln) looking || go (i + 1)) in
       go 0);
    check_bool "names the first line" true
      (let rec contains i sub =
         let ls = String.length sub in
         i + ls <= String.length msg
         && (String.equal (String.sub msg i ls) sub || contains (i + 1) sub)
       in
       contains 0 "line 1")

let test_whitelist_malformed () =
  match Whitelist.load_string ~path:"wl" "rule-without-path\n" with
  | Ok _ -> Alcotest.fail "malformed line must be a load error"
  | Error _ -> ();
  match Whitelist.load_string ~path:"wl" "rule lib/a.ml\n" with
  | Ok _ -> Alcotest.fail "missing justification must be a load error"
  | Error _ -> ()

let test_whitelist_apply_and_stale () =
  let src =
    "# comment\n\
     r2 lib/b.ml never matches\n\
     r1 lib/a.ml matches\n\
     r0 lib/z.ml never matches either\n"
  in
  match Whitelist.load_string ~path:"wl" src with
  | Error e -> Alcotest.fail e
  | Ok wl ->
    let f = Finding.make ~rule:"r1" ~file:"lib/a.ml" ~line:3 ~msg:"m" in
    let live = Finding.make ~rule:"rX" ~file:"lib/c.ml" ~line:9 ~msg:"m" in
    let out = Whitelist.apply wl [ f; live ] in
    check_int "one suppressed" 1 out.suppressed;
    check_int "one live" 1 (List.length out.live);
    Alcotest.(check (list (triple int string string)))
      "stale sorted by whitelist line, deterministically"
      [ (2, "r2", "lib/b.ml"); (4, "r0", "lib/z.ml") ]
      out.stale;
    Alcotest.(check (option string))
      "justification accessor" (Some "matches")
      (Whitelist.justification wl ~rule:"r1" ~path:"lib/a.ml")

(* ------------------------------------------------------------------ *)
(* Typed fixtures: parse + typecheck small modules in-process, then run
   the same passes hsfq_tlint runs over .cmt files. *)

let fixture_env = lazy (Compmisc.init_path (); Compmisc.initial_env ())

let fixture ?(modname = "Fixture") ?(source = "lib/fixture/fixture.ml")
    ?(imports = []) src : Cmt_index.unit_info =
  let env = Lazy.force fixture_env in
  let ast = Parse.implementation (Lexing.from_string src) in
  let structure, _, _, _, _ = Typemod.type_structure env ast in
  { modname; source; imports; structure }

let verdicts_of src =
  let u = fixture src in
  let index = Cmt_index.of_units [ u ] in
  List.map
    (fun (e : Inventory.entry) -> (e.name, Mutability.verdict_to_string e.verdict))
    (Inventory.of_index index)

let test_inventory_classification () =
  Alcotest.(check (list (pair string string)))
    "builtin containers classify"
    [
      ("a", "mutable/unguarded");
      ("b", "mutable/atomic");
      ("c", "mutable/domain-local");
      ("d", "immutable");
      ("e", "mutable/unguarded");
    ]
    (verdicts_of
       "let a = ref 0\n\
        let b = Atomic.make 0\n\
        let c = Domain.DLS.new_key (fun () -> 0)\n\
        let d = 42\n\
        let e : (int, int) Hashtbl.t = Hashtbl.create 4\n")

let test_inventory_records () =
  Alcotest.(check (list (pair string string)))
    "record fields and locks classify"
    [
      ("pool", "mutable/lock-bearing");
      ("frozen", "immutable");
      ("cell", "mutable/unguarded");
    ]
    (verdicts_of
       "type pool = { lock : Mutex.t; mutable jobs : int }\n\
        type frozen = { id : int; name : string }\n\
        type cell = { mutable v : float }\n\
        let pool = { lock = Mutex.create (); jobs = 0 }\n\
        let frozen = { id = 1; name = \"x\" }\n\
        let cell = { v = 0. }\n")

let test_inventory_nested_and_named () =
  (* a named type defined in one fixture unit, used by another: the
     decl map + wrapper-alias resolution has to cross units *)
  let def =
    fixture ~modname:"Fix_def" ~source:"lib/fixture/fix_def.ml"
      "type t = { mutable n : int }\nlet local = { n = 0 }\n"
  in
  let index = Cmt_index.of_units [ def ] in
  let entries = Inventory.of_index index in
  Alcotest.(check (list (pair string string)))
    "nested module globals inventoried"
    [ ("local", "mutable/unguarded") ]
    (List.map
       (fun (e : Inventory.entry) ->
         (e.name, Mutability.verdict_to_string e.verdict))
       entries);
  let nested =
    verdicts_of
      "module Inner = struct\n  let hidden = ref 0\nend\nlet top = 1\n"
  in
  Alcotest.(check (list (pair string string)))
    "nested structs walked"
    [ ("Inner.hidden", "mutable/unguarded"); ("top", "immutable") ]
    nested

let test_reach_closure () =
  let nodes =
    [
      ("worker", [ "core"; "util" ]);
      ("core", [ "util" ]);
      ("util", []);
      ("island", [ "core" ]);
    ]
  in
  let seen = Reach.closure ~nodes ~seeds:[ "worker" ] in
  check_bool "seed reachable" true (Hashtbl.mem seen "worker");
  check_bool "transitive reachable" true (Hashtbl.mem seen "util");
  check_bool "island not reachable" false (Hashtbl.mem seen "island");
  let cyclic = [ ("a", [ "b" ]); ("b", [ "a" ]) ] in
  let seen = Reach.closure ~nodes:cyclic ~seeds:[ "a" ] in
  check_int "cycles terminate" 2 (Hashtbl.length seen)

let test_reach_worker_seeds () =
  let mk name imports =
    fixture ~modname:name ~source:("lib/x/" ^ String.lowercase_ascii name ^ ".ml")
      ~imports "let n = 1\n"
  in
  let index =
    Cmt_index.of_units
      [
        mk "Driver" [ "Hsfq_par"; "Core" ];
        mk "Core" [ "Util" ];
        mk "Util" [];
        mk "Island" [ "Core" ];
      ]
  in
  Alcotest.(check (list string))
    "units importing Hsfq_par seed the walk" [ "Driver" ]
    (Reach.worker_seeds index);
  let reachable = Reach.from_workers index in
  check_bool "imports pull units in" true (Hashtbl.mem reachable "Util");
  check_bool "non-importing unit stays out" false (Hashtbl.mem reachable "Island");
  (* The process backend has no separate entrypoint surface: forked
     workers run closures from the same Hsfq_par-importing units, and
     Hsfq_par's own worker loops (Pool and Proc) seed themselves. *)
  let index =
    Cmt_index.of_units
      [ mk "Hsfq_par" [ "Unix" ]; mk "Proc_driver" [ "Hsfq_par"; "Core" ]; mk "Core" [] ]
  in
  Alcotest.(check (list string))
    "Hsfq_par itself and process-sweep callers both seed the walk"
    [ "Hsfq_par"; "Proc_driver" ]
    (Reach.worker_seeds index)

let test_domain_race_end_to_end () =
  let shared =
    fixture ~modname:"Fix_shared" ~source:"lib/fixture/fix_shared.ml"
      "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
       let safe = Atomic.make 0\n"
  in
  let worker =
    fixture ~modname:"Fix_worker" ~source:"lib/fixture/fix_worker.ml"
      ~imports:[ "Hsfq_par"; "Fix_shared" ] "let go () = ()\n"
  in
  let index = Cmt_index.of_units [ shared; worker ] in
  let _, findings = Typedlint.analyze index in
  let race =
    List.filter (fun (f : Finding.t) -> String.equal f.rule "tl-domain-race")
      findings
  in
  check_int "exactly the unguarded global flagged" 1 (List.length race);
  check_bool "at the Hashtbl site" true
    (match race with
    | [ f ] -> String.equal f.file "lib/fixture/fix_shared.ml" && f.line = 1
    | _ -> false)

let test_hotrules_fixture () =
  let hot =
    fixture ~source:"lib/core/sfq.ml"
      "type t = { tbl : (int, int) Hashtbl.t; mutable leaf : int }\n\
       let lookup t k = Hashtbl.find_opt t.tbl k\n\
       let retarget t l = t.leaf <- l\n"
  in
  let fs = Hotrules.scan_unit hot in
  check_bool "Hashtbl.t type rediscovered from types" true
    (List.exists
       (fun (f : Finding.t) ->
         String.equal f.rule "tl-hot-hashtbl" && f.line = 1)
       fs);
  check_bool "Hashtbl op flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         String.equal f.rule "tl-hot-hashtbl" && f.line = 2)
       fs);
  check_bool "leaf setfield flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         String.equal f.rule "tl-leaf-retarget" && f.line = 3)
       fs);
  let cold =
    fixture ~source:"lib/qos/manager.ml"
      "let t : (int, int) Hashtbl.t = Hashtbl.create 4\n"
  in
  check_bool "cold module has no hot findings" false
    (has_rule "tl-hot-hashtbl" (Hotrules.scan_unit cold))

let alloc_findings ?(roots = [ "hot" ]) ?(cold = []) src =
  let u = fixture ~source:"lib/fixture/fixture.ml" src in
  Allocpass.scan_unit { source = u.source; roots; cold } u

let test_allocpass_flags () =
  let fs =
    alloc_findings
      "let hot x =\n\
      \  let f = fun y -> x + y in\n\
      \  let pair = (x, f 1) in\n\
      \  Some pair\n"
  in
  check_bool "closure flagged" true
    (List.exists
       (fun (f : Finding.t) -> String.equal f.rule "tl-hot-alloc" && f.line = 2)
       fs);
  check_bool "tuple flagged" true
    (List.exists
       (fun (f : Finding.t) -> String.equal f.rule "tl-hot-alloc" && f.line = 3)
       fs);
  check_bool "Some flagged" true
    (List.exists
       (fun (f : Finding.t) -> String.equal f.rule "tl-hot-alloc" && f.line = 4)
       fs)

let test_allocpass_clean_and_closure () =
  let fs =
    alloc_findings
      "let helper a = a * 2\n\
       let hot x = if x > 0 then helper x else x - 1\n"
  in
  check_int "arithmetic-only path is clean" 0 (List.length fs);
  let fs =
    alloc_findings
      "let banned x = Printf.sprintf \"%d\" x\n\
       let hot x = banned (x + 1)\n"
  in
  check_bool "banned stdlib family via local call graph" true
    (has_rule "tl-hot-alloc" fs)

let test_allocpass_cold_and_errors () =
  let src =
    "let grow n = Array.make n 0\n\
     let hot x = if x > 1_000_000 then invalid_arg \"too big\" else x + 1\n"
  in
  let fs = alloc_findings ~cold:[ "grow" ] src in
  check_int "cold helper skipped; error path exempt" 0 (List.length fs);
  let fs = alloc_findings src in
  check_bool "same helper flagged when not declared cold" false
    (has_rule "tl-hot-alloc" fs)
  (* [hot] never calls [grow], so reachability keeps it out either way *)

let test_allocpass_float_box () =
  let fs =
    alloc_findings
      "type mixed = { id : int; mutable v : float }\n\
       type flat = { mutable a : float; mutable b : float }\n\
       let hot (m : mixed) (f : flat) x =\n\
      \  m.v <- x;\n\
      \  f.a <- x\n"
  in
  let boxes =
    List.filter (fun (f : Finding.t) -> String.equal f.rule "tl-float-box") fs
  in
  check_int "mixed-record store boxes, flat store doesn't" 1
    (List.length boxes);
  check_bool "at the mixed store" true
    (match boxes with [ f ] -> f.line = 4 | _ -> false);
  let fs =
    alloc_findings
      "let hot x =\n  let y = x +. 1.0 in\n  ignore (Float.to_string y)\n"
  in
  check_bool "float crossing a unit boundary flagged" true
    (has_rule "tl-float-box" fs);
  let fs = alloc_findings "let hot x = Float.of_int x\n" in
  check_bool "fully-applied float primitive doesn't box" false
    (has_rule "tl-float-box" fs)

let test_allocpass_missing_root () =
  let fs = alloc_findings ~roots:[ "nonexistent" ] "let hot x = x\n" in
  check_bool "unknown root reported" true (has_rule "tl-hot-missing" fs)

let test_bench_cross_check () =
  let json =
    "{\n  \"benchmarks\": {\n    \"sfq/Q=512\": {\n      \
     \"ns_per_decision\": 120.5,\n      \"minor_words_per_decision\": \
     2.002\n    },\n    \"other\": { \"minor_words_per_decision\": 99.0 }\n  \
     }\n}\n"
  in
  Alcotest.(check (option (float 0.0001)))
    "number extracted after the right benchmark" (Some 2.002)
    (Typedlint.find_number json ~benchmark:"sfq/Q=512"
       ~key:"minor_words_per_decision");
  Alcotest.(check (option (float 0.0001)))
    "missing benchmark is None" None
    (Typedlint.find_number json ~benchmark:"absent"
       ~key:"minor_words_per_decision")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_tokens_basic;
          Alcotest.test_case "comments" `Quick test_tokens_comments;
          Alcotest.test_case "quoted string in comment" `Quick
            test_tokens_quoted_string_in_comment;
          Alcotest.test_case "quoted string literal" `Quick
            test_tokens_quoted_string_toplevel;
          Alcotest.test_case "char literals" `Quick test_tokens_char_literals;
          Alcotest.test_case "operator runs" `Quick test_tokens_ops;
        ] );
      ( "token-rules",
        [
          Alcotest.test_case "poly-compare" `Quick test_rule_poly_compare;
          Alcotest.test_case "leaf-retarget" `Quick test_rule_leaf_retarget;
          Alcotest.test_case "assert-validation" `Quick test_rule_assert;
          Alcotest.test_case "toplevel-mutable state machine" `Quick
            test_rule_toplevel_mutable;
          Alcotest.test_case "hot-path-hashtbl scope" `Quick
            test_rule_hot_hashtbl_scope;
        ] );
      ( "whitelist",
        [
          Alcotest.test_case "duplicates are errors" `Quick
            test_whitelist_duplicates;
          Alcotest.test_case "malformed lines are errors" `Quick
            test_whitelist_malformed;
          Alcotest.test_case "apply + stale ordering" `Quick
            test_whitelist_apply_and_stale;
        ] );
      ( "typed-inventory",
        [
          Alcotest.test_case "builtin containers" `Quick
            test_inventory_classification;
          Alcotest.test_case "records and locks" `Quick test_inventory_records;
          Alcotest.test_case "nested modules and named types" `Quick
            test_inventory_nested_and_named;
        ] );
      ( "typed-reach",
        [
          Alcotest.test_case "closure over hand graphs" `Quick
            test_reach_closure;
          Alcotest.test_case "worker seeds from imports" `Quick
            test_reach_worker_seeds;
          Alcotest.test_case "domain-race end to end" `Quick
            test_domain_race_end_to_end;
        ] );
      ( "typed-hotrules",
        [ Alcotest.test_case "fixture module" `Quick test_hotrules_fixture ] );
      ( "typed-alloc",
        [
          Alcotest.test_case "allocating constructs" `Quick
            test_allocpass_flags;
          Alcotest.test_case "clean path and banned calls" `Quick
            test_allocpass_clean_and_closure;
          Alcotest.test_case "cold helpers and error paths" `Quick
            test_allocpass_cold_and_errors;
          Alcotest.test_case "float boxing" `Quick test_allocpass_float_box;
          Alcotest.test_case "missing root" `Quick test_allocpass_missing_root;
        ] );
      ( "bench-check",
        [ Alcotest.test_case "json extraction" `Quick test_bench_cross_check ]
      );
    ]
