(* Integration tests: every reproduction experiment must satisfy its
   shape checks (the quantitative claims transcribed from the paper's
   figures), plus a few direct cross-experiment assertions. *)

open Hsfq_experiments

let run_entry (e : Registry.entry) () =
  let checks = e.execute ~quiet:true in
  List.iter
    (fun (c : Common.check) ->
      if not c.ok then
        Alcotest.failf "%s: check %S failed (%s)" e.id c.label c.detail)
    checks;
  Alcotest.(check bool) "has checks" true (checks <> [])

let registry_cases =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case (e.id ^ ": " ^ e.title) `Slow (run_entry e))
    Registry.all

let test_registry_lookup () =
  Alcotest.(check bool) "find fig5" true (Registry.find "fig5" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "fig99" = None);
  Alcotest.(check int) "twenty experiments" 20 (List.length (Registry.ids ()))

let test_csv_export () =
  Alcotest.(check (list string)) "exportable figure set"
    [ "fig1"; "fig5"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11" ]
    (Csv_export.exportable ());
  Alcotest.(check bool) "unknown id" true (Result.is_error (Csv_export.export "nope"));
  match Csv_export.export "fig1" with
  | Error e -> Alcotest.fail e
  | Ok files ->
    Alcotest.(check int) "one file for fig1" 1 (List.length files);
    let name, contents = List.hd files in
    Alcotest.(check string) "filename" "fig1_decode_costs.csv" name;
    let lines = String.split_on_char '\n' contents in
    Alcotest.(check string) "header" "frame,cost_ms,type" (List.hd lines);
    Alcotest.(check bool) "2000 data rows" true (List.length lines > 2000)

(* Direct cross-checks on experiment data, beyond the built-in checks. *)

let test_fig3_step_count () =
  let r = Fig3.run () in
  (* 15 quanta run in [0, 170): 9 before the idle period and 6 after. *)
  Alcotest.(check int) "quanta in the timeline" 15 (List.length r.Fig3.steps)

let test_fig3_gantt_shape () =
  let r = Fig3.run () in
  let g = Fig3.render_gantt r in
  let lines = String.split_on_char '\n' g |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "two lanes" 2 (List.length lines);
  (* The idle gap [90, 110) must show as two '.' cells on both lanes
     (cells 9 and 10). *)
  let cell_of line i =
    (* lane name, space, '|', then one char per 10 ms cell *)
    let bar = String.index line '|' in
    line.[bar + 1 + i]
  in
  List.iter
    (fun line ->
      Alcotest.(check char) "idle cell 9" '.' (cell_of line 9);
      Alcotest.(check char) "idle cell 10" '.' (cell_of line 10))
    lines

let test_umbrella_module () =
  (* The umbrella aliases must reach every layer. *)
  let s = Hsfq.Sfq.create () in
  Hsfq.Sfq.arrive s ~id:1 ~weight:1.;
  Alcotest.(check int) "core reachable" 1 (Hsfq.Sfq.backlogged s);
  let h = Hsfq.Hierarchy.create () in
  Alcotest.(check int) "hierarchy reachable" 1 (Hsfq.Hierarchy.node_count h);
  Alcotest.(check bool) "sched reachable" true
    (String.equal Hsfq.Sched.Wfq.algorithm_name "wfq");
  Alcotest.(check int) "engine reachable" 5_000_000 (Hsfq.Time.milliseconds 5)

let test_fig5_totals_consistent () =
  let r = Fig5.run ~seconds:10 () in
  Alcotest.(check int) "five TS threads" 5 (Array.length r.Fig5.ts_loops);
  Alcotest.(check int) "five SFQ threads" 5 (Array.length r.Fig5.sfq_loops);
  Array.iter
    (fun b ->
      let total = Array.fold_left ( +. ) 0. b in
      Alcotest.(check bool) "buckets sum to something" true (total > 0.))
    r.Fig5.sfq_buckets

let test_fig8_robust_across_seeds () =
  (* The 1:3 shape must not depend on the particular background seed. *)
  List.iter
    (fun seed ->
      let r = Fig8.run ~seconds:15 ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "ratio ~3 with seed %d" seed)
        true
        (Float.abs (r.Fig8.ratio_overall -. 3.) < 0.2))
    [ 7; 1234; 999983 ]

let test_xlatency_robust_across_seeds () =
  (* SFQ-beats-WFQ for low-weight clients must hold for any burst
     pattern, not just the default seed. *)
  List.iter
    (fun seed ->
      let r = Xlatency.run ~seconds:60 ~seed () in
      let find name =
        List.find (fun (row : Xlatency.row) -> String.equal row.algorithm name) r.Xlatency.rows
      in
      Alcotest.(check bool)
        (Printf.sprintf "wfq >> sfq with seed %d" seed)
        true
        ((find "wfq").mean_ms > 3. *. (find "sfq").mean_ms))
    [ 2; 424242 ]

let test_fig10_monotone_cumulative () =
  let r = Fig10.run ~seconds:30 () in
  let rec monotone = function
    | (_, a5, a10) :: ((_, b5, b10) :: _ as rest) ->
      a5 <= b5 && a10 <= b10 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative frames nondecreasing" true
    (monotone r.Fig10.cum_rows)

let test_fig11_sleep_phase_exact () =
  let r = Fig11.run () in
  (* Seconds 6..8: thread1 is suspended, so its buckets are exactly 0 and
     thread2 gets everything. *)
  Alcotest.(check (float 0.)) "t1 second 7" 0. r.Fig11.t1_per_sec.(7);
  Alcotest.(check bool) "t2 owns the CPU" true (r.Fig11.t2_per_sec.(7) > 1900.)

let () =
  Alcotest.run "experiments"
    [
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry_lookup ]);
      ("csv", [ Alcotest.test_case "export" `Quick test_csv_export ]);
      ("paper figures & extensions", registry_cases);
      ( "cross-checks",
        [
          Alcotest.test_case "fig3 timeline length" `Quick test_fig3_step_count;
          Alcotest.test_case "fig3 gantt shape" `Quick test_fig3_gantt_shape;
          Alcotest.test_case "umbrella module" `Quick test_umbrella_module;
          Alcotest.test_case "fig5 data shapes" `Quick test_fig5_totals_consistent;
          Alcotest.test_case "fig8 robust across seeds" `Quick
            test_fig8_robust_across_seeds;
          Alcotest.test_case "xlatency robust across seeds" `Quick
            test_xlatency_robust_across_seeds;
          Alcotest.test_case "fig10 cumulative monotone" `Quick
            test_fig10_monotone_cumulative;
          Alcotest.test_case "fig11 sleep phase" `Quick test_fig11_sleep_phase_exact;
        ] );
    ]
