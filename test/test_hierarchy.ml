(* Tests for the scheduling structure (lib/core/hierarchy): the paper's
   hsfq_mknod/parse/rmnod administration, setrun/sleep runnable
   propagation, hierarchical SFQ scheduling ratios, and residual
   redistribution. *)

open Hsfq_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let ok where = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" where e

let err where = function
  | Ok _ -> Alcotest.failf "%s: expected an error" where
  | Error e -> e

(* Build the paper's Figure 2 structure. Returns (t, hard, soft, best,
   user1, user2). *)
let figure2 () =
  let t = Hierarchy.create () in
  let hard =
    ok "hard" (Hierarchy.mknod t ~name:"hard-rt" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf)
  in
  let soft =
    ok "soft" (Hierarchy.mknod t ~name:"soft-rt" ~parent:Hierarchy.root ~weight:3. Hierarchy.Leaf)
  in
  let best =
    ok "best" (Hierarchy.mknod t ~name:"best-effort" ~parent:Hierarchy.root ~weight:6. Hierarchy.Internal)
  in
  let user1 = ok "user1" (Hierarchy.mknod t ~name:"user1" ~parent:best ~weight:1. Hierarchy.Leaf) in
  let user2 = ok "user2" (Hierarchy.mknod t ~name:"user2" ~parent:best ~weight:1. Hierarchy.Leaf) in
  (t, hard, soft, best, user1, user2)

(* Run [n] schedule/update cycles with unit service; returns per-leaf
   selection counts. *)
let spin t n =
  let counts = Hashtbl.create 8 in
  for _ = 1 to n do
    match Hierarchy.schedule t with
    | Some leaf ->
      Hashtbl.replace counts leaf (1 + Option.value ~default:0 (Hashtbl.find_opt counts leaf));
      Hierarchy.update t ~leaf ~service:1. ~leaf_runnable:true
    | None -> ()
  done;
  fun leaf -> Option.value ~default:0 (Hashtbl.find_opt counts leaf)

(* ----------------------------- paths ---------------------------------- *)

let test_path_components () =
  check_bool "plain" true (Path.is_valid_component "user1");
  check_bool "dash and dot inside" true (Path.is_valid_component "a.b-c");
  check_bool "empty" false (Path.is_valid_component "");
  check_bool "dot" false (Path.is_valid_component ".");
  check_bool "dotdot" false (Path.is_valid_component "..");
  check_bool "slash" false (Path.is_valid_component "a/b")

let test_path_split_join () =
  (match Path.split "/a/b" with
  | Ok parts -> Alcotest.(check (list string)) "absolute" [ "a"; "b" ] parts
  | Error e -> Alcotest.fail e);
  (match Path.split "a/b" with
  | Ok parts -> Alcotest.(check (list string)) "relative" [ "a"; "b" ] parts
  | Error e -> Alcotest.fail e);
  (match Path.split "/" with
  | Ok parts -> Alcotest.(check (list string)) "root" [] parts
  | Error e -> Alcotest.fail e);
  check_bool "absolute flag" true (Path.is_absolute "/a");
  check_bool "relative flag" false (Path.is_absolute "a");
  check_bool "empty rejected" true (Result.is_error (Path.split ""));
  check_bool "dotdot rejected" true (Result.is_error (Path.split "/a/../b"));
  Alcotest.(check string) "join" "/a/b" (Path.join [ "a"; "b" ]);
  Alcotest.(check string) "join empty" "/" (Path.join [])

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_tree () =
  let t, _, _, _, _, user2 = figure2 () in
  Hierarchy.setrun t user2;
  let s = Hierarchy.render_tree t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_int "one line per node" 6 (List.length lines);
  check_bool "user2 line marked runnable" true
    (List.exists (fun l -> contains ~sub:"user2" l && contains ~sub:"runnable" l) lines);
  check_bool "hard-rt line idle" true
    (List.exists (fun l -> contains ~sub:"hard-rt" l && contains ~sub:"idle" l) lines)

(* --------------------------- structure ------------------------------- *)

let test_create () =
  let t = Hierarchy.create () in
  check_int "only the root" 1 (Hierarchy.node_count t);
  check_bool "root internal" true (Hierarchy.kind_of t Hierarchy.root = Hierarchy.Internal);
  check_bool "root not runnable" false (Hierarchy.is_runnable t Hierarchy.root);
  Alcotest.(check (option int)) "root has no parent" None
    (Hierarchy.parent_of t Hierarchy.root);
  Alcotest.(check string) "root name" "/" (Hierarchy.name_of t Hierarchy.root)

let test_mknod_and_names () =
  let t, hard, _, best, user1, _ = figure2 () in
  check_int "six nodes" 6 (Hierarchy.node_count t);
  Alcotest.(check string) "leaf name" "/hard-rt" (Hierarchy.name_of t hard);
  Alcotest.(check string) "nested name" "/best-effort/user1"
    (Hierarchy.name_of t user1);
  check_int "depth of user1" 2 (Hierarchy.depth t user1);
  check_int "depth of root" 0 (Hierarchy.depth t Hierarchy.root);
  Alcotest.(check (list int)) "children in creation order" [ user1 ]
    (List.filter (fun c -> Hierarchy.name_of t c = "/best-effort/user1")
       (Hierarchy.children_of t best));
  check_float "weight stored" 6. (Hierarchy.weight t best)

let test_mknod_errors () =
  let t, hard, _, best, _, _ = figure2 () in
  ignore (err "dup" (Hierarchy.mknod t ~name:"user1" ~parent:best ~weight:1. Hierarchy.Leaf));
  ignore (err "leaf parent" (Hierarchy.mknod t ~name:"x" ~parent:hard ~weight:1. Hierarchy.Leaf));
  ignore (err "unknown parent" (Hierarchy.mknod t ~name:"x" ~parent:999 ~weight:1. Hierarchy.Leaf));
  ignore (err "bad weight" (Hierarchy.mknod t ~name:"x" ~parent:best ~weight:0. Hierarchy.Leaf));
  ignore (err "bad name /" (Hierarchy.mknod t ~name:"a/b" ~parent:best ~weight:1. Hierarchy.Leaf));
  ignore (err "empty name" (Hierarchy.mknod t ~name:"" ~parent:best ~weight:1. Hierarchy.Leaf));
  ignore (err "dot name" (Hierarchy.mknod t ~name:"." ~parent:best ~weight:1. Hierarchy.Leaf))

let test_parse () =
  let t, hard, _, best, user1, user2 = figure2 () in
  check_int "absolute" user1 (ok "p1" (Hierarchy.parse t "/best-effort/user1"));
  check_int "absolute leaf" hard (ok "p2" (Hierarchy.parse t "/hard-rt"));
  check_int "root" Hierarchy.root (ok "p3" (Hierarchy.parse t "/"));
  check_int "relative to hint" user2 (ok "p4" (Hierarchy.parse t ~hint:best "user2"));
  check_int "relative default root" hard (ok "p5" (Hierarchy.parse t "hard-rt"));
  ignore (err "missing" (Hierarchy.parse t "/no-such-node"));
  ignore (err "missing nested" (Hierarchy.parse t "/best-effort/nobody"));
  ignore (err "empty" (Hierarchy.parse t ""))

let test_rmnod () =
  let t, hard, _, best, user1, user2 = figure2 () in
  ignore (err "root" (Hierarchy.rmnod t Hierarchy.root));
  ignore (err "has children" (Hierarchy.rmnod t best));
  Hierarchy.setrun t hard;
  ignore (err "runnable" (Hierarchy.rmnod t hard));
  Hierarchy.sleep t hard;
  ok "leaf" (Hierarchy.rmnod t hard);
  ignore (err "already removed" (Hierarchy.rmnod t hard));
  ok "user1" (Hierarchy.rmnod t user1);
  ok "user2" (Hierarchy.rmnod t user2);
  ok "now empty internal" (Hierarchy.rmnod t best);
  check_int "back to two nodes" 2 (Hierarchy.node_count t);
  (* The name is reusable after removal. *)
  ignore
    (ok "reuse name"
       (Hierarchy.mknod t ~name:"best-effort" ~parent:Hierarchy.root ~weight:1.
          Hierarchy.Leaf))

let test_set_weight () =
  let t, hard, _, _, _, _ = figure2 () in
  Hierarchy.set_weight t hard 5.;
  check_float "updated" 5. (Hierarchy.weight t hard);
  Alcotest.check_raises "root weight"
    (Invalid_argument "Hierarchy.set_weight: root has no weight") (fun () ->
      Hierarchy.set_weight t Hierarchy.root 2.);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Hierarchy.set_weight: weight <= 0") (fun () ->
      Hierarchy.set_weight t hard 0.)

(* ---------------------- runnable propagation ------------------------- *)

let test_setrun_propagates () =
  let t, _, _, best, user1, user2 = figure2 () in
  check_bool "initially idle" false (Hierarchy.is_runnable t Hierarchy.root);
  Hierarchy.setrun t user1;
  check_bool "leaf" true (Hierarchy.is_runnable t user1);
  check_bool "parent" true (Hierarchy.is_runnable t best);
  check_bool "root" true (Hierarchy.is_runnable t Hierarchy.root);
  check_bool "sibling untouched" false (Hierarchy.is_runnable t user2)

let test_sleep_stops_at_busy_ancestor () =
  let t, _, _, best, user1, user2 = figure2 () in
  Hierarchy.setrun t user1;
  Hierarchy.setrun t user2;
  Hierarchy.sleep t user1;
  check_bool "user1 asleep" false (Hierarchy.is_runnable t user1);
  check_bool "best still runnable (user2)" true (Hierarchy.is_runnable t best);
  check_bool "root still runnable" true (Hierarchy.is_runnable t Hierarchy.root);
  Hierarchy.sleep t user2;
  check_bool "best idle" false (Hierarchy.is_runnable t best);
  check_bool "root idle" false (Hierarchy.is_runnable t Hierarchy.root)

let test_update_propagates_sleep () =
  let t, _, _, best, user1, _ = figure2 () in
  Hierarchy.setrun t user1;
  (match Hierarchy.schedule t with
  | Some leaf when leaf = user1 ->
    Hierarchy.update t ~leaf ~service:10. ~leaf_runnable:false
  | _ -> Alcotest.fail "expected user1");
  check_bool "leaf idle" false (Hierarchy.is_runnable t user1);
  check_bool "best idle" false (Hierarchy.is_runnable t best);
  check_bool "root idle" false (Hierarchy.is_runnable t Hierarchy.root);
  Alcotest.(check (option int)) "nothing schedulable" None (Hierarchy.schedule t)

(* ------------------------ scheduling ratios -------------------------- *)

let test_flat_ratio () =
  let t = Hierarchy.create () in
  let a = ok "a" (Hierarchy.mknod t ~name:"a" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf) in
  let b = ok "b" (Hierarchy.mknod t ~name:"b" ~parent:Hierarchy.root ~weight:3. Hierarchy.Leaf) in
  Hierarchy.setrun t a;
  Hierarchy.setrun t b;
  let count = spin t 4000 in
  check_int "a gets 1/4" 1000 (count a);
  check_int "b gets 3/4" 3000 (count b)

let test_hierarchical_ratio () =
  (* root -> A (w=1) | B (w=1, internal) -> B1 (w=1) | B2 (w=3).
     Shares: A 50%, B1 12.5%, B2 37.5%. *)
  let t = Hierarchy.create () in
  let a = ok "a" (Hierarchy.mknod t ~name:"a" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf) in
  let b = ok "b" (Hierarchy.mknod t ~name:"b" ~parent:Hierarchy.root ~weight:1. Hierarchy.Internal) in
  let b1 = ok "b1" (Hierarchy.mknod t ~name:"b1" ~parent:b ~weight:1. Hierarchy.Leaf) in
  let b2 = ok "b2" (Hierarchy.mknod t ~name:"b2" ~parent:b ~weight:3. Hierarchy.Leaf) in
  Hierarchy.setrun t a;
  Hierarchy.setrun t b1;
  Hierarchy.setrun t b2;
  let count = spin t 8000 in
  check_bool "A ~ 50%" true (abs (count a - 4000) <= 4);
  check_bool "B1 ~ 12.5%" true (abs (count b1 - 1000) <= 4);
  check_bool "B2 ~ 37.5%" true (abs (count b2 - 3000) <= 4)

let test_residual_redistribution () =
  (* Figure 2 example 1: with hard-rt idle, soft-rt and best-effort split
     its allocation 3:6. *)
  let t, _, soft, _, user1, user2 = figure2 () in
  Hierarchy.setrun t soft;
  Hierarchy.setrun t user1;
  Hierarchy.setrun t user2;
  let count = spin t 9000 in
  check_int "soft 3/9" 3000 (count soft);
  check_int "user1 3/9 (half of 6/9)" 3000 (count user1);
  check_int "user2 3/9" 3000 (count user2)

let test_weight_change_reshapes_allocation () =
  let t = Hierarchy.create () in
  let a = ok "a" (Hierarchy.mknod t ~name:"a" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf) in
  let b = ok "b" (Hierarchy.mknod t ~name:"b" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf) in
  Hierarchy.setrun t a;
  Hierarchy.setrun t b;
  let (_ : Hierarchy.id -> int) = spin t 100 in
  Hierarchy.set_weight t b 3.;
  let count = spin t 4000 in
  check_bool "after change, b gets ~3/4" true (abs (count b - 3000) <= 4)

let test_deep_chain () =
  let t = Hierarchy.create () in
  let parent = ref Hierarchy.root in
  for i = 1 to 30 do
    parent :=
      ok "mid" (Hierarchy.mknod t ~name:(Printf.sprintf "m%d" i) ~parent:!parent ~weight:1. Hierarchy.Internal)
  done;
  let a = ok "a" (Hierarchy.mknod t ~name:"a" ~parent:!parent ~weight:1. Hierarchy.Leaf) in
  let b = ok "b" (Hierarchy.mknod t ~name:"b" ~parent:!parent ~weight:2. Hierarchy.Leaf) in
  check_int "depth 31" 31 (Hierarchy.depth t a);
  Hierarchy.setrun t a;
  Hierarchy.setrun t b;
  let count = spin t 3000 in
  check_int "a 1/3 at depth 31" 1000 (count a);
  check_int "b 2/3 at depth 31" 2000 (count b);
  (* Sleep propagates all the way up the chain. *)
  Hierarchy.sleep t a;
  Hierarchy.sleep t b;
  check_bool "root idle after deep sleep" false (Hierarchy.is_runnable t Hierarchy.root)

let test_schedule_empty () =
  let t, _, _, _, _, _ = figure2 () in
  Alcotest.(check (option int)) "no runnable leaf" None (Hierarchy.schedule t)

let test_donate_siblings_only () =
  let t, hard, soft, _, user1, _ = figure2 () in
  ok "siblings" (Hierarchy.donate t ~blocked:hard ~recipient:soft);
  Hierarchy.revoke t ~blocked:hard;
  ignore (err "not siblings" (Hierarchy.donate t ~blocked:hard ~recipient:user1))

let test_tag_accessors () =
  let t, hard, _, _, _, _ = figure2 () in
  Alcotest.check_raises "root has no tags"
    (Invalid_argument "Hierarchy.start_tag_of: root has no tags") (fun () ->
      ignore (Hierarchy.start_tag_of t Hierarchy.root));
  Hierarchy.setrun t hard;
  check_float "initial start tag" 0. (Hierarchy.start_tag_of t hard);
  check_float "root vt" 0. (Hierarchy.virtual_time_of t Hierarchy.root)

(* --------------------------- properties ------------------------------ *)

(* Invariant: a node is runnable iff some leaf in its subtree is
   runnable, under random wake/sleep/schedule sequences. *)
let prop_runnable_invariant =
  QCheck.Test.make ~name:"runnable flags track leaf state" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 120) (pair (int_bound 3) (int_bound 2)))
    (fun ops ->
      let t = Hierarchy.create () in
      let mid =
        ok "mid" (Hierarchy.mknod t ~name:"mid" ~parent:Hierarchy.root ~weight:1. Hierarchy.Internal)
      in
      let leaves =
        [|
          ok "l0" (Hierarchy.mknod t ~name:"l0" ~parent:Hierarchy.root ~weight:1. Hierarchy.Leaf);
          ok "l1" (Hierarchy.mknod t ~name:"l1" ~parent:mid ~weight:2. Hierarchy.Leaf);
          ok "l2" (Hierarchy.mknod t ~name:"l2" ~parent:mid ~weight:3. Hierarchy.Leaf);
          ok "l3" (Hierarchy.mknod t ~name:"l3" ~parent:Hierarchy.root ~weight:4. Hierarchy.Leaf);
        |]
      in
      let model = Array.make 4 false in
      let consistent () =
        let leaf_ok = Array.for_all Fun.id (Array.mapi (fun i l -> Hierarchy.is_runnable t l = model.(i)) leaves) in
        let mid_ok = Hierarchy.is_runnable t mid = (model.(1) || model.(2)) in
        let root_ok =
          Hierarchy.is_runnable t Hierarchy.root
          = (model.(0) || model.(1) || model.(2) || model.(3))
        in
        leaf_ok && mid_ok && root_ok
      in
      List.for_all
        (fun (i, action) ->
          (match action with
          | 0 ->
            (* wake leaf i *)
            if not model.(i) then begin
              Hierarchy.setrun t leaves.(i);
              model.(i) <- true
            end
          | 1 ->
            (* sleep leaf i (only when runnable) *)
            if model.(i) then begin
              Hierarchy.sleep t leaves.(i);
              model.(i) <- false
            end
          | _ -> (
            (* one scheduling cycle; the chosen leaf blocks when it
               matches i *)
            match Hierarchy.schedule t with
            | None -> ()
            | Some leaf ->
              let idx =
                match Array.to_list (Array.mapi (fun j l -> (j, l)) leaves)
                      |> List.find_opt (fun (_, l) -> l = leaf)
                with
                | Some (j, _) -> j
                | None -> -1
              in
              let still = idx <> i in
              Hierarchy.update t ~leaf ~service:1. ~leaf_runnable:still;
              if not still then model.(idx) <- false));
          consistent ())
        ops)

(* The kernel dispatch loop's sentinel-id protocol (schedule_id /
   update_ns) must be observationally identical to the option-shaped
   schedule/update: drive twin hierarchies through the same random
   wake/sleep/schedule sequence, one per protocol, and require the same
   selections, runnable flags and virtual times throughout. *)
let prop_schedule_id_matches_schedule =
  QCheck.Test.make ~name:"schedule_id/update_ns agree with schedule/update"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 120) (pair (int_bound 3) (int_bound 2)))
    (fun ops ->
      let build () =
        let t = Hierarchy.create () in
        let mid =
          ok "mid"
            (Hierarchy.mknod t ~name:"mid" ~parent:Hierarchy.root ~weight:1.
               Hierarchy.Internal)
        in
        let leaves =
          [|
            ok "l0"
              (Hierarchy.mknod t ~name:"l0" ~parent:Hierarchy.root ~weight:1.
                 Hierarchy.Leaf);
            ok "l1" (Hierarchy.mknod t ~name:"l1" ~parent:mid ~weight:2. Hierarchy.Leaf);
            ok "l2" (Hierarchy.mknod t ~name:"l2" ~parent:mid ~weight:3. Hierarchy.Leaf);
            ok "l3"
              (Hierarchy.mknod t ~name:"l3" ~parent:Hierarchy.root ~weight:4.
                 Hierarchy.Leaf);
          |]
        in
        (t, leaves)
      in
      let a, la = build () in
      let b, lb = build () in
      let agree () =
        Array.for_all Fun.id
          (Array.mapi
             (fun i l ->
               Hierarchy.is_runnable a l = Hierarchy.is_runnable b lb.(i)
               && Float.abs
                    (Hierarchy.start_tag_of a l -. Hierarchy.start_tag_of b lb.(i))
                  < 1e-9)
             la)
        && Float.abs
             (Hierarchy.virtual_time_of a Hierarchy.root
             -. Hierarchy.virtual_time_of b Hierarchy.root)
           < 1e-9
      in
      List.for_all
        (fun (i, action) ->
          (match action with
          | 0 ->
            Hierarchy.setrun a la.(i);
            Hierarchy.setrun b lb.(i);
            true
          | 1 ->
            if Hierarchy.is_runnable a la.(i) then begin
              Hierarchy.sleep a la.(i);
              Hierarchy.sleep b lb.(i)
            end;
            true
          | _ -> (
            let sa = Hierarchy.schedule a in
            let sb = Hierarchy.schedule_id b in
            match sa with
            | None -> sb = -1
            | Some leaf ->
              leaf = sb
              &&
              (let still = leaf <> la.(i) in
               Hierarchy.update a ~leaf ~service:3_000_000. ~leaf_runnable:still;
               Hierarchy.update_ns b ~leaf:sb ~service_ns:3_000_000
                 ~leaf_runnable:still;
               true)))
          && agree ())
        ops)

(* Selection frequencies track weights for random 2-level trees. *)
let prop_weighted_shares =
  QCheck.Test.make ~name:"selection shares follow weight products" ~count:60
    QCheck.(
      pair
        (pair (float_range 0.5 4.) (float_range 0.5 4.))
        (pair (float_range 0.5 4.) (float_range 0.5 4.)))
    (fun ((wa, wb), (w1, w2)) ->
      let t = Hierarchy.create () in
      let a = ok "a" (Hierarchy.mknod t ~name:"a" ~parent:Hierarchy.root ~weight:wa Hierarchy.Leaf) in
      let b = ok "b" (Hierarchy.mknod t ~name:"b" ~parent:Hierarchy.root ~weight:wb Hierarchy.Internal) in
      let b1 = ok "b1" (Hierarchy.mknod t ~name:"b1" ~parent:b ~weight:w1 Hierarchy.Leaf) in
      let b2 = ok "b2" (Hierarchy.mknod t ~name:"b2" ~parent:b ~weight:w2 Hierarchy.Leaf) in
      Hierarchy.setrun t a;
      Hierarchy.setrun t b1;
      Hierarchy.setrun t b2;
      let n = 20000 in
      let count = spin t n in
      let total = float_of_int n in
      let share_a = wa /. (wa +. wb) in
      let share_b1 = wb /. (wa +. wb) *. (w1 /. (w1 +. w2)) in
      let share_b2 = wb /. (wa +. wb) *. (w2 /. (w1 +. w2)) in
      let close got want = Float.abs ((float_of_int got /. total) -. want) < 0.01 in
      close (count a) share_a && close (count b1) share_b1 && close (count b2) share_b2)

(* A pure chain of intermediate nodes must not change scheduling at all:
   the leaf-selection sequence equals flat SFQ's over the same clients. *)
let prop_chain_equals_flat =
  QCheck.Test.make ~name:"single-child chains are scheduling no-ops" ~count:60
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 10 80) (float_range 0.5 4.)))
    (fun (depth, quanta) ->
      (* Flat: three SFQ clients. *)
      let flat = Sfq.create () in
      List.iteri (fun i w -> Sfq.arrive flat ~id:(i + 1) ~weight:w) [ 1.; 2.; 3. ];
      (* Chained: the same three leaves under [depth] intermediate
         single-child nodes. *)
      let t = Hierarchy.create () in
      let parent = ref Hierarchy.root in
      for i = 1 to depth do
        parent :=
          ok "mid"
            (Hierarchy.mknod t ~name:(Printf.sprintf "m%d" i) ~parent:!parent
               ~weight:1. Hierarchy.Internal)
      done;
      let leaves =
        List.mapi
          (fun i w ->
            let id =
              ok "leaf"
                (Hierarchy.mknod t ~name:(Printf.sprintf "l%d" i) ~parent:!parent
                   ~weight:w Hierarchy.Leaf)
            in
            Hierarchy.setrun t id;
            (i + 1, id))
          [ 1.; 2.; 3. ]
      in
      List.for_all
        (fun service ->
          let flat_pick =
            match Sfq.select flat with
            | Some id ->
              Sfq.charge flat ~id ~service ~runnable:true;
              id
            | None -> -1
          in
          let tree_pick =
            match Hierarchy.schedule t with
            | Some leaf ->
              Hierarchy.update t ~leaf ~service ~leaf_runnable:true;
              (match List.find_opt (fun (_, l) -> l = leaf) leaves with
              | Some (i, _) -> i
              | None -> -2)
            | None -> -3
          in
          flat_pick = tree_pick)
        quanta)

(* ---------------------- churn and reclamation -------------------------- *)

(* Bulk-build a wide internal node (through reserve_children), tear most
   of it down, and require the whole structure to shrink: node-array
   capacity and footprint follow the survivors, the invariant audit stays
   clean over the compacted state, the surviving runnable leaves still
   dispatch, and freed ids are recycled instead of growing the frontier. *)
let test_churn_reclaims_and_redispatches () =
  let t = Hierarchy.create () in
  let g =
    ok "g"
      (Hierarchy.mknod t ~name:"g" ~parent:Hierarchy.root ~weight:1.
         Hierarchy.Internal)
  in
  let n = 2048 in
  Hierarchy.reserve_children t g n;
  let leaves =
    Array.init n (fun i ->
        ok "leaf"
          (Hierarchy.mknod t
             ~name:(Printf.sprintf "l%d" i)
             ~parent:g
             ~weight:(float_of_int (1 + (i mod 3)))
             Hierarchy.Leaf))
  in
  check_int "node count" (2 + n) (Hierarchy.node_count t);
  for i = 0 to 7 do
    Hierarchy.setrun t leaves.(i)
  done;
  let cap_full = Hierarchy.capacity t in
  let fp_full = Hierarchy.footprint_words t in
  (* Remove all but the first 64 children (the runnable ones are among
     the survivors): live occupancy falls far below a quarter of both
     the node array and g's SFQ table. *)
  for i = 64 to n - 1 do
    ok "rm" (Hierarchy.rmnod t leaves.(i))
  done;
  let sink = Hsfq_check.Invariant.create () in
  Hsfq_check.Hierarchy_audit.check_all sink t;
  check_int "audit clean after the storm" 0 (Hsfq_check.Invariant.count sink);
  check_bool "node array released" true (Hierarchy.capacity t < cap_full);
  check_bool "footprint released" true (2 * Hierarchy.footprint_words t < fp_full);
  (* Dispatch through the compacted parent SFQ still works and only
     serves the runnable survivors. *)
  for _ = 1 to 32 do
    let leaf = Hierarchy.schedule_id t in
    check_bool "a runnable survivor is selected" true
      (leaf >= 0 && Array.exists (fun l -> l = leaf) (Array.sub leaves 0 8));
    Hierarchy.update_ns t ~leaf ~service_ns:1_000_000 ~leaf_runnable:true
  done;
  (* Freed ids are recycled below the old frontier. *)
  let nid =
    ok "fresh"
      (Hierarchy.mknod t ~name:"fresh" ~parent:g ~weight:1. Hierarchy.Leaf)
  in
  check_bool "id recycled, frontier trimmed" true (nid <= leaves.(64));
  check_bool "reserve_children rejects leaves" true
    (try
       Hierarchy.reserve_children t nid 4;
       false
     with Invalid_argument _ -> true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "hierarchy"
    [
      ( "paths",
        [
          Alcotest.test_case "component validity" `Quick test_path_components;
          Alcotest.test_case "split and join" `Quick test_path_split_join;
          Alcotest.test_case "render_tree" `Quick test_render_tree;
        ] );
      ( "structure",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "mknod and names" `Quick test_mknod_and_names;
          Alcotest.test_case "mknod errors" `Quick test_mknod_errors;
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "rmnod" `Quick test_rmnod;
          Alcotest.test_case "set_weight" `Quick test_set_weight;
          Alcotest.test_case "tag accessors" `Quick test_tag_accessors;
        ] );
      ( "runnability",
        [
          Alcotest.test_case "setrun propagates up" `Quick test_setrun_propagates;
          Alcotest.test_case "sleep stops at busy ancestor" `Quick
            test_sleep_stops_at_busy_ancestor;
          Alcotest.test_case "update propagates sleep" `Quick
            test_update_propagates_sleep;
          Alcotest.test_case "schedule on empty structure" `Quick test_schedule_empty;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "flat 1:3 split" `Quick test_flat_ratio;
          Alcotest.test_case "two-level shares" `Quick test_hierarchical_ratio;
          Alcotest.test_case "residual redistribution (Example 1)" `Quick
            test_residual_redistribution;
          Alcotest.test_case "dynamic weight change" `Quick
            test_weight_change_reshapes_allocation;
          Alcotest.test_case "depth-31 chain" `Quick test_deep_chain;
          Alcotest.test_case "donation sibling restriction" `Quick
            test_donate_siblings_only;
          Alcotest.test_case "churn reclaims and redispatches" `Quick
            test_churn_reclaims_and_redispatches;
        ] );
      ( "properties",
        [
          qc prop_runnable_invariant;
          qc prop_schedule_id_matches_schedule;
          qc prop_weighted_shares;
          qc prop_chain_equals_flat;
        ] );
    ]
