(* Tests for the workload generators (lib/workload). *)

open Hsfq_engine
open Hsfq_workload
module W = Hsfq_kernel.Workload_intf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --------------------------- dhrystone ------------------------------- *)

let test_dhrystone_counts_completed_loops () =
  let wl, c = Dhrystone.make ~loop_cost:(Time.milliseconds 2) () in
  (* First call starts loop 1; each later call completes the previous. *)
  (match wl ~now:0 with
  | W.Compute d -> check_int "loop cost" (Time.milliseconds 2) d
  | _ -> Alcotest.fail "compute expected");
  check_int "no loop done yet" 0 (Dhrystone.loops c);
  ignore (wl ~now:(Time.milliseconds 2));
  ignore (wl ~now:(Time.milliseconds 4));
  check_int "two loops completed" 2 (Dhrystone.loops c);
  check_int "loops_before t=2ms" 1 (Dhrystone.loops_before c (Time.milliseconds 2))

let test_dhrystone_rejects_bad_cost () =
  Alcotest.check_raises "zero cost" (Invalid_argument "Dhrystone.make: loop_cost <= 0")
    (fun () -> ignore (Dhrystone.make ~loop_cost:0 ()))

(* ----------------------------- mpeg ---------------------------------- *)

let test_mpeg_trace_deterministic () =
  let p = Mpeg.default_params in
  Alcotest.(check (array int)) "same seed, same trace" (Mpeg.trace p ~frames:100)
    (Mpeg.trace p ~frames:100);
  let other = Mpeg.trace { p with seed = p.seed + 1 } ~frames:100 in
  check_bool "different seed differs" true (Mpeg.trace p ~frames:100 <> other)

let test_mpeg_frame_types_follow_gop () =
  let p = Mpeg.default_params in
  check_bool "frame 0 is I" true (Mpeg.frame_type p 0 = 'I');
  check_bool "frame 1 is B" true (Mpeg.frame_type p 1 = 'B');
  check_bool "frame 3 is P" true (Mpeg.frame_type p 3 = 'P');
  check_bool "GOP repeats" true (Mpeg.frame_type p 12 = 'I')

let test_mpeg_type_costs_ordered () =
  let p = { Mpeg.default_params with noise_sigma = 0.01; complexity_sigma = 0.01 } in
  let costs = Mpeg.trace p ~frames:600 in
  let mean ty =
    let sum = ref 0. and n = ref 0 in
    Array.iteri
      (fun i c ->
        if Mpeg.frame_type p i = ty then begin
          sum := !sum +. float_of_int c;
          incr n
        end)
      costs;
    !sum /. float_of_int !n
  in
  check_bool "I > P" true (mean 'I' > mean 'P');
  check_bool "P > B" true (mean 'P' > mean 'B')

let test_mpeg_unpaced_decoder () =
  let wl, c = Mpeg.decoder Mpeg.default_params ~frames:3 () in
  (match wl ~now:0 with W.Compute _ -> () | _ -> Alcotest.fail "compute");
  ignore (wl ~now:100);
  ignore (wl ~now:200);
  check_int "two frames done" 2 (Mpeg.decoded c);
  (match wl ~now:300 with
  | W.Exit -> ()
  | _ -> Alcotest.fail "exit after the 3-frame clip");
  check_int "three frames done" 3 (Mpeg.decoded c)

let test_mpeg_paced_decoder_sleeps () =
  let p = { Mpeg.default_params with fps = 10. } in
  let wl, _ = Mpeg.decoder p ~paced:true () in
  (* Pacing is anchored at the first activation: starting at t=50 ms,
     frame 0 displays immediately and frame 1 at +100 ms. *)
  (match wl ~now:(Time.milliseconds 50) with
  | W.Sleep_until t -> check_int "frame 0 time" (Time.milliseconds 50) t
  | _ -> Alcotest.fail "paced decoder starts by pacing");
  (match wl ~now:(Time.milliseconds 50) with
  | W.Compute _ -> ()
  | _ -> Alcotest.fail "decode");
  match wl ~now:(Time.milliseconds 70) with
  | W.Sleep_until t ->
    check_int "frame 1 at epoch + 100 ms" (Time.milliseconds 150) t
  | _ -> Alcotest.fail "paces to the next frame"

let test_mpeg_decoder_of_costs () =
  let costs = [| Time.milliseconds 5; Time.milliseconds 10 |] in
  let wl, c = Mpeg.decoder_of_costs costs ~fps:10. ~loop:false () in
  (match wl ~now:0 with
  | W.Compute d -> check_int "frame 0 cost" (Time.milliseconds 5) d
  | _ -> Alcotest.fail "compute");
  (match wl ~now:100 with
  | W.Compute d -> check_int "frame 1 cost" (Time.milliseconds 10) d
  | _ -> Alcotest.fail "compute 2");
  (match wl ~now:200 with
  | W.Exit -> ()
  | _ -> Alcotest.fail "exit at end without loop");
  check_int "two frames" 2 (Mpeg.decoded c);
  (* Looping replays the trace. *)
  let wl, _ = Mpeg.decoder_of_costs costs ~fps:10. () in
  ignore (wl ~now:0);
  ignore (wl ~now:1);
  match wl ~now:2 with
  | W.Compute d -> check_int "wraps around" (Time.milliseconds 5) d
  | _ -> Alcotest.fail "loop"

let test_mpeg_late_frames () =
  let p = { Mpeg.default_params with fps = 10. } in
  let wl, c = Mpeg.decoder p ~paced:true () in
  ignore (wl ~now:0) (* sleep to epoch *);
  ignore (wl ~now:0) (* decode frame 0 *);
  (* Frame 0 completes at 150 ms — past frame 1's display at 100 ms. *)
  ignore (wl ~now:(Time.milliseconds 150));
  check_int "late frame counted" 1 (Mpeg.late_frames c);
  (* Frame 1 decoded promptly at 180 ms < 200 ms: not late. *)
  ignore (wl ~now:(Time.milliseconds 180));
  check_int "on-time frame not counted" 1 (Mpeg.late_frames c)

let test_mpeg_demand_stats () =
  let mean, sigma, period = Mpeg.demand_stats Mpeg.default_params ~frames:600 in
  check_bool "mean near base cost scale" true (mean > 0.004 && mean < 0.02);
  check_bool "positive spread" true (sigma > 0.);
  Alcotest.(check (float 1e-9)) "period = 1/fps" (1. /. 30.) period

(* --------------------------- periodic -------------------------------- *)

let test_periodic_rounds_and_slack () =
  let wl, c =
    Periodic.make ~period:(Time.milliseconds 100) ~cost:(Time.milliseconds 10)
      ~rounds:2 ()
  in
  (* t=0: release round 0. *)
  (match wl ~now:0 with
  | W.Compute d -> check_int "cost" (Time.milliseconds 10) d
  | _ -> Alcotest.fail "compute");
  (* Completed at t=30: slack = 100 - 30 = 70 ms. *)
  (match wl ~now:(Time.milliseconds 30) with
  | W.Sleep_until t -> check_int "next release" (Time.milliseconds 100) t
  | _ -> Alcotest.fail "sleep to next round");
  check_int "one round" 1 (Periodic.completed c);
  Alcotest.(check (float 1e-6)) "slack recorded" (float_of_int (Time.milliseconds 70))
    (Hsfq_engine.Stats.mean (Periodic.slack_stats c));
  (* Round 1 released at 100, completes late at 250 -> miss (slack <0). *)
  (match wl ~now:(Time.milliseconds 100) with
  | W.Compute _ -> ()
  | _ -> Alcotest.fail "round 1");
  (match wl ~now:(Time.milliseconds 250) with
  | W.Exit -> ()
  | _ -> Alcotest.fail "rounds limit reached");
  check_int "miss counted" 1 (Periodic.misses c);
  check_int "two rounds" 2 (Periodic.completed c)

let test_periodic_late_release_runs_immediately () =
  let wl, _ = Periodic.make ~period:(Time.milliseconds 50) ~cost:(Time.milliseconds 5) () in
  (match wl ~now:0 with W.Compute _ -> () | _ -> Alcotest.fail "round 0");
  (* Completion way past several periods: the next round starts now
     (releases are not skipped, the task catches up late). *)
  match wl ~now:(Time.milliseconds 470) with
  | W.Compute _ -> ()
  | a ->
    Alcotest.failf "expected immediate late round, got %s"
      (match a with
      | W.Sleep_until _ -> "sleep_until"
      | W.Sleep_for _ -> "sleep_for"
      | W.Exit -> "exit"
      | W.Lock _ -> "lock"
      | W.Unlock _ -> "unlock"
      | W.Io _ -> "io"
      | W.Compute _ -> "compute")

let test_periodic_phase () =
  let wl, _ =
    Periodic.make ~period:(Time.milliseconds 100) ~cost:(Time.milliseconds 1)
      ~phase:(Time.milliseconds 40) ()
  in
  match wl ~now:0 with
  | W.Sleep_until t -> check_int "first release at phase" (Time.milliseconds 40) t
  | _ -> Alcotest.fail "waits for phase"

(* -------------------------- interactive ------------------------------ *)

let test_interactive_response_measurement () =
  let wl, c =
    Interactive.make ~mean_think:(Time.milliseconds 100) ~burst:(Time.milliseconds 5)
      ~requests:2 ()
  in
  (match wl ~now:0 with
  | W.Compute d -> check_int "burst" (Time.milliseconds 5) d
  | _ -> Alcotest.fail "burst");
  (match wl ~now:(Time.milliseconds 12) with
  | W.Sleep_for _ -> ()
  | _ -> Alcotest.fail "think");
  check_int "one response" 1 (Interactive.responses c);
  Alcotest.(check (float 1e-6)) "response = completion - request"
    (float_of_int (Time.milliseconds 12))
    (Hsfq_engine.Stats.mean (Interactive.response_stats c));
  (match wl ~now:(Time.milliseconds 100) with
  | W.Compute _ -> ()
  | _ -> Alcotest.fail "burst 2");
  match wl ~now:(Time.milliseconds 103) with
  | W.Exit -> check_int "two responses" 2 (Interactive.responses c)
  | _ -> Alcotest.fail "exit at request limit"

let test_interactive_think_times_vary () =
  let wl, _ =
    Interactive.make ~mean_think:(Time.milliseconds 50) ~burst:(Time.milliseconds 1) ()
  in
  let think () =
    ignore (wl ~now:0);
    match wl ~now:1 with
    | W.Sleep_for d -> d
    | _ -> Alcotest.fail "think expected"
  in
  let a = think () and b = think () in
  check_bool "exponential think times differ" true (a <> b)

(* ----------------------------- onoff --------------------------------- *)

let test_onoff_alternates () =
  let wl, c = Onoff.make ~on:(Time.milliseconds 100) ~off:(Time.milliseconds 300) () in
  Alcotest.(check (float 1e-9)) "duty cycle" 0.25 (Onoff.duty_cycle c);
  (match wl ~now:0 with
  | W.Compute d -> check_int "on burst" (Time.milliseconds 100) d
  | _ -> Alcotest.fail "compute first");
  (match wl ~now:0 with
  | W.Sleep_for d -> check_int "off sleep" (Time.milliseconds 300) d
  | _ -> Alcotest.fail "then sleep");
  check_int "one burst completed" 1 (Onoff.bursts c);
  match wl ~now:0 with
  | W.Compute _ -> ()
  | _ -> Alcotest.fail "cycles forever"

let test_onoff_jitter_deterministic () =
  let draw () =
    let wl, _ =
      Onoff.make ~on:(Time.milliseconds 50) ~off:(Time.milliseconds 50)
        ~jitter:true ~seed:3 ()
    in
    match (wl ~now:0, wl ~now:0) with
    | W.Compute a, W.Sleep_for b -> (a, b)
    | _ -> Alcotest.fail "shape"
  in
  let a1, b1 = draw () and a2, b2 = draw () in
  check_int "seeded burst" a1 a2;
  check_int "seeded sleep" b1 b2;
  check_bool "jitter differs from the mean" true
    (a1 <> Time.milliseconds 50 || b1 <> Time.milliseconds 50)

let test_onoff_validation () =
  Alcotest.check_raises "bad durations" (Invalid_argument "Onoff.make: bad durations")
    (fun () -> ignore (Onoff.make ~on:0 ~off:(Time.milliseconds 1) ()))

(* ------------------------ workload helpers --------------------------- *)

let test_of_list_exhausts_to_exit () =
  let wl = W.of_list [ W.Compute 5 ] in
  (match wl ~now:0 with W.Compute 5 -> () | _ -> Alcotest.fail "first");
  (match wl ~now:0 with W.Exit -> () | _ -> Alcotest.fail "exit");
  match wl ~now:0 with W.Exit -> () | _ -> Alcotest.fail "stays exit"

let () =
  Alcotest.run "workload"
    [
      ( "dhrystone",
        [
          Alcotest.test_case "counts completed loops" `Quick
            test_dhrystone_counts_completed_loops;
          Alcotest.test_case "rejects bad cost" `Quick test_dhrystone_rejects_bad_cost;
        ] );
      ( "mpeg",
        [
          Alcotest.test_case "deterministic trace" `Quick test_mpeg_trace_deterministic;
          Alcotest.test_case "GOP frame types" `Quick test_mpeg_frame_types_follow_gop;
          Alcotest.test_case "I/P/B cost ordering" `Quick test_mpeg_type_costs_ordered;
          Alcotest.test_case "unpaced decoder" `Quick test_mpeg_unpaced_decoder;
          Alcotest.test_case "paced decoder sleeps" `Quick
            test_mpeg_paced_decoder_sleeps;
          Alcotest.test_case "demand stats for admission" `Quick
            test_mpeg_demand_stats;
          Alcotest.test_case "external cost trace decoder" `Quick
            test_mpeg_decoder_of_costs;
          Alcotest.test_case "late frame accounting" `Quick test_mpeg_late_frames;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "rounds, slack, misses" `Quick
            test_periodic_rounds_and_slack;
          Alcotest.test_case "late release catches up" `Quick
            test_periodic_late_release_runs_immediately;
          Alcotest.test_case "phase offset" `Quick test_periodic_phase;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "response measurement" `Quick
            test_interactive_response_measurement;
          Alcotest.test_case "think-time randomness" `Quick
            test_interactive_think_times_vary;
        ] );
      ( "onoff",
        [
          Alcotest.test_case "alternates compute/sleep" `Quick test_onoff_alternates;
          Alcotest.test_case "jitter deterministic" `Quick
            test_onoff_jitter_deterministic;
          Alcotest.test_case "validation" `Quick test_onoff_validation;
        ] );
      ( "helpers",
        [ Alcotest.test_case "of_list exhausts to Exit" `Quick test_of_list_exhausts_to_exit ]
      );
    ]
