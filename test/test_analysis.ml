(* Tests for the measurement/analysis library (lib/analysis). *)

open Hsfq_engine
open Hsfq_analysis

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let series_of samples =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s t v) samples;
  s

(* --------------------------- fairness -------------------------------- *)

let test_lag_perfectly_fair () =
  (* Alternating unit service to equal-weight clients: lag is one unit. *)
  let fa = series_of [ (1, 1.); (3, 1.); (5, 1.) ] in
  let fb = series_of [ (2, 1.); (4, 1.); (6, 1.) ] in
  check_float "lag = one quantum" 1.
    (Fairness.normalized_lag ~fa ~wa:1. ~fb ~wb:1. ~until:6)

let test_lag_weighted () =
  (* b gets 2 units per a's 1, weights 1:2 -> normalized equal. *)
  let fa = series_of [ (1, 1.); (4, 1.) ] in
  let fb = series_of [ (2, 2.); (5, 2.) ] in
  check_float "weighted lag = one normalized quantum" 1.
    (Fairness.normalized_lag ~fa ~wa:1. ~fb ~wb:2. ~until:5)

let test_lag_detects_unfairness () =
  (* a is starved: lag grows with b's total service. *)
  let fa = series_of [] in
  let fb = series_of [ (1, 5.); (2, 5.) ] in
  check_float "starvation lag" 10.
    (Fairness.normalized_lag ~fa ~wa:1. ~fb ~wb:1. ~until:2)

let test_lag_interval_sensitivity () =
  (* Unfair burst in the middle even though totals balance out. *)
  let fa = series_of [ (1, 4.); (10, 0.) ] in
  let fb = series_of [ (5, 4.) ] in
  check_float "captures worst interval" 4.
    (Fairness.normalized_lag ~fa ~wa:1. ~fb ~wb:1. ~until:10)

let test_lag_respects_until () =
  let fa = series_of [ (1, 1.); (100, 50.) ] in
  let fb = series_of [ (2, 1.) ] in
  check_float "samples beyond until ignored" 1.
    (Fairness.normalized_lag ~fa ~wa:1. ~fb ~wb:1. ~until:10)

let test_sfq_bound_and_pairs () =
  check_float "bound formula" 30. (Fairness.sfq_bound ~lmax_a:20. ~wa:1. ~lmax_b:20. ~wb:2.);
  let clients =
    [|
      (series_of [ (1, 1.) ], 1.);
      (series_of [ (2, 4.) ], 1.);
      (series_of [ (3, 1.) ], 1.);
    |]
  in
  (* Worst pair is (1 unit) vs (4 units). *)
  check_float "max pairwise" 4. (Fairness.max_pairwise_lag clients ~until:3)

(* --------------------------- fc_server ------------------------------- *)

let test_fc_constant_rate () =
  (* Work delivered exactly at rate 0.5: one sample of 5 at t=10, etc.
     The deficit peaks just before each delivery. *)
  let w = series_of [ (10, 5.); (20, 5.); (30, 5.) ] in
  check_float "delta of a periodic server" 0.
    (Fc_server.estimate_delta w ~rate:0.5 ~from_:0 ~until:30);
  check_bool "is_fc with zero delta" true
    (Fc_server.is_fc w ~rate:0.5 ~delta:0.001 ~from_:0 ~until:30)

let test_fc_detects_gap () =
  (* A 10-unit service gap: at full rate 1.0 the deficit reaches 10. *)
  let w = series_of [ (10, 10.); (30, 10.) ] in
  check_float "delta = gap" 10.
    (Fc_server.estimate_delta w ~rate:1.0 ~from_:0 ~until:30);
  check_bool "not FC with small delta" false
    (Fc_server.is_fc w ~rate:1.0 ~delta:5. ~from_:0 ~until:30)

let test_fc_endpoint_counts () =
  (* No work at all: the deficit at the interval end must be seen. *)
  let w = series_of [] in
  check_float "pure gap" 100.
    (Fc_server.estimate_delta w ~rate:1.0 ~from_:0 ~until:100)

let test_thread_fc_params () =
  let rate, delta =
    Fc_server.thread_fc_params ~weight:1. ~total_weight:4. ~c:1. ~delta:8.
      ~lmax_others_sum:60. ~lmax_self:20.
  in
  check_float "thread rate = share" 0.25 rate;
  check_float "thread burstiness" ((0.25 *. 68.) +. 20.) delta

let test_ebf_exceedance () =
  let w = series_of [ (10, 10.); (30, 10.) ] in
  let tails =
    Fc_server.ebf_exceedance w ~rate:1.0 ~from_:0 ~until:30 ~gammas:[| 0.; 5.; 50. |]
  in
  check_bool "tail decreasing in gamma" true
    (tails.(0) >= tails.(1) && tails.(1) >= tails.(2));
  check_float "nothing exceeds 50" 0. tails.(2)

let test_windowed_exceedance () =
  (* Three 10-unit windows delivering 10 / 4 / 10 of work at rate 1:
     deficits 0 / 6 / 0. *)
  let w = series_of [ (2, 10.); (15, 4.); (22, 10.) ] in
  let tails =
    Fc_server.windowed_exceedance w ~rate:1.0 ~window:10 ~until:30
      ~gammas:[| 0.; 5.; 7. |]
  in
  Alcotest.(check (array (float 1e-9))) "per-window deficit tail"
    [| 1. /. 3.; 1. /. 3.; 0. |] tails;
  (* Degenerate cases. *)
  let empty =
    Fc_server.windowed_exceedance (series_of []) ~rate:1.0 ~window:10 ~until:5
      ~gammas:[| 0. |]
  in
  Alcotest.(check (array (float 0.))) "no full window" [| 0. |] empty

(* -------------------------- delay_bound ------------------------------ *)

let test_eat_recursion () =
  let t = Delay_bound.create ~rate:0.5 () in
  (* Quantum 1: arrives at 0, length 10 -> EAT 0. *)
  check_float "first EAT = arrival" 0. (Delay_bound.on_quantum t ~arrival:0. ~length:10.);
  (* Quantum 2 arrives early (t=5): EAT = max(5, 0 + 10/0.5) = 20. *)
  check_float "backlogged EAT" 20. (Delay_bound.on_quantum t ~arrival:5. ~length:10.);
  (* Quantum 3 arrives late (t=100): EAT = its arrival. *)
  check_float "late arrival EAT" 100.
    (Delay_bound.on_quantum t ~arrival:100. ~length:10.)

let test_bound_formula () =
  check_float "eq. 8 shape" 170.
    (Delay_bound.bound ~eat:100. ~delta:10. ~c:1. ~lmax_others_sum:60.)

let test_wfq_delay_comparison () =
  (* Low-throughput client: C/r = 20 > Q-1 = 4, so SFQ wins (positive). *)
  check_bool "SFQ wins for low-rate clients" true
    (Delay_bound.wfq_vs_sfq_extra_delay ~quantum:20. ~rate:0.05 ~c:1. ~nclients:5 > 0.);
  (* High-throughput client: C/r = 1.25 < Q-1, WFQ wins. *)
  check_bool "WFQ wins for high-rate clients" true
    (Delay_bound.wfq_vs_sfq_extra_delay ~quantum:20. ~rate:0.8 ~c:1. ~nclients:5 < 0.)

(* ---------------------------- metrics -------------------------------- *)

let test_metrics () =
  let s = series_of [ (5, 1.); (15, 2.); (25, 3.) ] in
  Alcotest.(check (array (float 0.))) "throughput buckets" [| 1.; 2.; 3. |]
    (Metrics.throughput_buckets s ~width:10 ~until:30);
  check_float "ratio" 2. (Metrics.ratio 4. 2.);
  check_float "ratio by zero" 0. (Metrics.ratio 4. 0.);
  Alcotest.(check (array (float 0.))) "ratio buckets" [| 2.; 0.5 |]
    (Metrics.ratio_buckets [| 4.; 1. |] [| 2.; 2. |]);
  check_float "relative error" 0.1 (Metrics.relative_error ~measured:0.9 ~expected:1.);
  check_float "cv of equal values" 0. (Metrics.totals_cv [| 5.; 5.; 5. |])

let () =
  Alcotest.run "analysis"
    [
      ( "fairness",
        [
          Alcotest.test_case "fair alternation" `Quick test_lag_perfectly_fair;
          Alcotest.test_case "weighted normalization" `Quick test_lag_weighted;
          Alcotest.test_case "detects starvation" `Quick test_lag_detects_unfairness;
          Alcotest.test_case "worst interval, not totals" `Quick
            test_lag_interval_sensitivity;
          Alcotest.test_case "until horizon respected" `Quick test_lag_respects_until;
          Alcotest.test_case "bound and pairwise max" `Quick test_sfq_bound_and_pairs;
        ] );
      ( "fc-server",
        [
          Alcotest.test_case "constant-rate trace" `Quick test_fc_constant_rate;
          Alcotest.test_case "detects service gaps" `Quick test_fc_detects_gap;
          Alcotest.test_case "interval endpoint counted" `Quick test_fc_endpoint_counts;
          Alcotest.test_case "thread FC parameters (eq. 6)" `Quick test_thread_fc_params;
          Alcotest.test_case "EBF exceedance tail" `Quick test_ebf_exceedance;
          Alcotest.test_case "windowed exceedance" `Quick test_windowed_exceedance;
        ] );
      ( "delay-bound",
        [
          Alcotest.test_case "EAT recursion" `Quick test_eat_recursion;
          Alcotest.test_case "eq. 8 formula" `Quick test_bound_formula;
          Alcotest.test_case "WFQ vs SFQ delay crossover" `Quick
            test_wfq_delay_comparison;
        ] );
      ("metrics", [ Alcotest.test_case "helpers" `Quick test_metrics ]);
    ]
