(* Tests for lib/par: the domain pool and the deterministic-sweep
   contract — [Par.sweep ~jobs ~tasks ~f] must equal [Array.map f tasks]
   for every [jobs], including exception behaviour, and the real fan-out
   surfaces built on it (torture seed sweeps, figure CSV export) must
   produce identical bytes whatever the parallelism. *)

module Par = Hsfq_par.Par
module T = Hsfq_torture.Torture
module E = Hsfq_experiments
module Prng = Hsfq_engine.Prng

let check_int = Alcotest.(check int)

(* ------------------------- sweep basics ----------------------------- *)

let test_sweep_matches_serial_map () =
  let tasks = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let serial = Array.map f tasks in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        serial
        (Par.sweep ~jobs ~tasks ~f))
    [ 1; 2; 3; 4; 8; 200 (* more jobs than tasks *) ]

let test_sweep_empty_and_single () =
  Alcotest.(check (array int))
    "empty" [||]
    (Par.sweep ~jobs:4 ~tasks:[||] ~f:(fun x -> x));
  Alcotest.(check (array int))
    "single" [| 7 |]
    (Par.sweep ~jobs:4 ~tasks:[| 6 |] ~f:succ)

exception Boom of int

let test_sweep_reraises_lowest_failure () =
  (* Several tasks raise; the join must deterministically re-raise the
     one with the lowest task index, whatever the interleaving. *)
  for _attempt = 1 to 5 do
    match
      Par.sweep ~jobs:4
        ~tasks:(Array.init 64 (fun i -> i))
        ~f:(fun i -> if i mod 10 = 3 then raise (Boom i) else i)
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> check_int "lowest failing index" 3 i
  done

let test_pool_reuse () =
  Par.Pool.with_pool ~workers:3 (fun pool ->
      check_int "workers" 3 (Par.Pool.workers pool);
      for round = 1 to 4 do
        let out =
          Par.Pool.sweep pool
            ~tasks:(Array.init 33 (fun i -> i))
            ~f:(fun i -> i * round)
        in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 33 (fun i -> i * round))
          out
      done)

let test_sweep_seeded_jobs_invariant () =
  (* Each task draws from its own Prng substream, so the drawn values
     must not depend on which domain ran the task. *)
  let tasks = Array.init 40 (fun i -> i) in
  let f ~rng i = (i, Prng.int rng 1_000_000, Prng.float rng 1.) in
  let run jobs = Par.sweep_seeded ~jobs ~rng:(Prng.create 9) ~tasks ~f in
  let serial = run 1 in
  Alcotest.(check (array (triple int int (float 0.))))
    "jobs 1 = jobs 4" serial (run 4);
  Alcotest.(check (array (triple int int (float 0.))))
    "jobs 1 = jobs 7" serial (run 7)

(* Per-task Invariant sinks: each task collects violations locally and
   returns them; the merged arrays must line up with task order, not
   completion order. *)
let test_per_task_sinks_merge_in_order () =
  let module I = Hsfq_check.Invariant in
  let run jobs =
    Par.sweep ~jobs
      ~tasks:(Array.init 16 (fun i -> i))
      ~f:(fun i ->
        let sink = I.create ~policy:I.Collect () in
        for k = 0 to i do
          I.report sink
            {
              invariant = "synthetic";
              event = Printf.sprintf "task %d step %d" i k;
              node = "/test";
              detail = "";
            }
        done;
        List.map I.violation_to_string (I.violations sink))
  in
  let serial = run 1 in
  Array.iteri
    (fun i vs -> check_int (Printf.sprintf "task %d count" i) (i + 1) (List.length vs))
    serial;
  Alcotest.(check (array (list string))) "jobs 1 = jobs 4" serial (run 4)

(* -------------------- real fan-out surfaces ------------------------- *)

(* A torture outcome rendered in full — executed trace, violation list,
   crash — so equality below means the whole verdict matched, not just
   the pass/fail bit. *)
let outcome_repr (o : T.outcome) =
  Printf.sprintf "%d ops | %s | viol:[%s] | crash:%s" o.ops_run
    (T.trace_to_string o.trace)
    (String.concat "; "
       (List.map Hsfq_check.Invariant.violation_to_string o.violations))
    (Option.value o.crash ~default:"-")

let test_torture_sweep_determinism () =
  let seeds = Array.init 6 (fun i -> 100 + i) in
  let cfg = T.config ~ops:1_500 ~audit_period:2 0 in
  let run jobs = Array.map outcome_repr (T.sweep ~jobs cfg ~seeds) in
  let serial = run 1 in
  Alcotest.(check (array string)) "jobs 1 = jobs 4" serial (run 4);
  Alcotest.(check (array string)) "jobs 1 = jobs 0 (auto)" serial (run 0)

let test_csv_sweep_determinism () =
  (* Byte equality of exported figure CSVs across parallelism. A subset
     keeps the suite quick; the full set runs in `hsfq_sim csv --all`. *)
  let ids =
    Array.of_list
      (List.filteri (fun i _ -> i < 5) (E.Csv_export.exportable ()))
  in
  let run jobs =
    Par.sweep ~jobs ~tasks:ids ~f:(fun id ->
        match E.Csv_export.export id with
        | Ok files ->
          String.concat "\x00"
            (List.concat_map (fun (name, contents) -> [ name; contents ]) files)
        | Error e -> "error: " ^ e)
  in
  Alcotest.(check (array string)) "figure CSV bytes, jobs 1 = jobs 4" (run 1)
    (run 4)

let () =
  Alcotest.run "par"
    [
      ( "sweep",
        [
          Alcotest.test_case "matches serial map" `Quick
            test_sweep_matches_serial_map;
          Alcotest.test_case "empty and single" `Quick
            test_sweep_empty_and_single;
          Alcotest.test_case "re-raises lowest failure" `Quick
            test_sweep_reraises_lowest_failure;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "seeded substreams" `Quick
            test_sweep_seeded_jobs_invariant;
          Alcotest.test_case "sink merge order" `Quick
            test_per_task_sinks_merge_in_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "torture verdicts" `Quick
            test_torture_sweep_determinism;
          Alcotest.test_case "figure CSV bytes" `Quick
            test_csv_sweep_determinism;
        ] );
    ]
