(* Tests for lib/par: the domain pool, the fork-based process backend
   and the deterministic-sweep contract — [Par.sweep ~jobs ~tasks f]
   must equal [Array.map f tasks] for every [jobs] and every [backend],
   including exception behaviour (a worker process dying mid-chunk must
   surface as an error, never a hang), and the real fan-out surfaces
   built on it (torture seed sweeps, figure CSV export) must produce
   identical bytes whatever the parallelism. *)

module Par = Hsfq_par.Par
module T = Hsfq_torture.Torture
module E = Hsfq_experiments
module Prng = Hsfq_engine.Prng

let check_int = Alcotest.(check int)

(* Both parallel backends, for tests that must hold on each.  Processes
   first: OCaml forbids [Unix.fork] once any domain has ever been
   spawned, so process-backend runs must precede domain runs (both
   within a test and across the suite — see the registration order at
   the bottom) to genuinely exercise the fork path rather than the
   documented domain-pool fallback. *)
let par_backends = [ Par.Processes; Par.Domains ]

let backend_name = Par.backend_to_string

(* Assert the suite ordering still guarantees a real fork: if a domain
   was spawned before this point, the process-backend assertions below
   would silently exercise the fallback instead. *)
let require_fork () =
  Alcotest.(check bool)
    "processes backend still forks (no domain spawned yet)" true
    (Par.processes_available ())

(* ------------------------- sweep basics ----------------------------- *)

let test_sweep_matches_serial_map () =
  (* First mixed test: its Processes pass must still see a forkable
     process (par_backends runs Processes before Domains). *)
  require_fork ();
  let tasks = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let serial = Array.map f tasks in
  List.iter
    (fun backend ->
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s jobs=%d" (backend_name backend) jobs)
            serial
            (Par.sweep ~backend ~jobs ~tasks f))
        [ 1; 2; 3; 4; 8; 200 (* more jobs than tasks *) ])
    par_backends

let test_sweep_empty_and_single () =
  List.iter
    (fun backend ->
      Alcotest.(check (array int))
        "empty" [||]
        (Par.sweep ~backend ~jobs:4 ~tasks:[||] (fun x -> x));
      Alcotest.(check (array int))
        "single" [| 7 |]
        (Par.sweep ~backend ~jobs:4 ~tasks:[| 6 |] succ))
    par_backends

exception Boom of int

let test_sweep_reraises_lowest_failure () =
  (* Several tasks raise; the join must deterministically re-raise the
     one with the lowest task index, whatever the interleaving — with
     the genuine exception (the process backend re-runs the failing
     task in the caller: marshalling can't carry exception identity). *)
  List.iter
    (fun backend ->
      for _attempt = 1 to 5 do
        match
          Par.sweep ~backend ~jobs:4
            ~tasks:(Array.init 64 (fun i -> i))
            (fun i -> if i mod 10 = 3 then raise (Boom i) else i)
        with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom i ->
          check_int
            (Printf.sprintf "%s lowest failing index" (backend_name backend))
            3 i
      done)
    par_backends

let test_process_worker_death_is_an_error () =
  require_fork ();
  (* A worker that exits mid-chunk closes its result pipe; the EOF must
     surface as Worker_failure naming an unfinished index — not hang
     the join, not leave a silent gap in the results. *)
  match
    Par.sweep ~backend:Par.Processes ~jobs:2
      ~tasks:(Array.init 24 (fun i -> i))
      (fun i -> if i = 5 then Unix._exit 3 else i)
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Par.Worker_failure { index = Some _; message } ->
    Alcotest.(check bool)
      "message names the worker exit"
      true
      (String.length message > 0)
  | exception Par.Worker_failure { index = None; _ } ->
    Alcotest.fail "expected a failing index with the worker death"

let test_workers_observe_minor_heap () =
  (* --minor-heap must resize each worker's own nursery: a fresh domain
     or forked process starts from the runtime default, not from the
     caller's setting, so the resize has to happen worker-side.  (By
     this point earlier tests have spawned domains, so the Processes
     pass may run on the documented domain-pool fallback — which must
     uphold the same worker-side guarantee.) *)
  let want = 2_000_000 in
  List.iter
    (fun backend ->
      let own = (Gc.get ()).Gc.minor_heap_size in
      let heaps =
        Par.sweep ~backend ~jobs:2 ~minor_heap:want
          ~tasks:(Array.init 8 (fun i -> i))
          (fun _ -> (Gc.get ()).Gc.minor_heap_size)
      in
      Array.iter
        (fun h ->
          Alcotest.(check bool)
            (Printf.sprintf "%s worker nursery >= %d" (backend_name backend)
               want)
            true (h >= want))
        heaps;
      check_int
        (Printf.sprintf "%s caller nursery untouched" (backend_name backend))
        own
        ((Gc.get ()).Gc.minor_heap_size))
    par_backends

let test_resolve_jobs_policy () =
  (* The one jobs policy: explicit values pass through, <= 0 means one
     per available core, and the result is always >= 1 — even on a
     single-core box, where auto must resolve to the serial path rather
     than a guaranteed-loss jobs=2. *)
  check_int "explicit 5" 5 (Par.resolve_jobs 5);
  check_int "explicit 1" 1 (Par.resolve_jobs 1);
  check_int "auto = cores" (Par.available_cores ()) (Par.resolve_jobs 0);
  check_int "negative = auto" (Par.resolve_jobs 0) (Par.resolve_jobs (-7));
  check_int "default_jobs = auto" (Par.resolve_jobs 0) (Par.default_jobs ());
  Alcotest.(check bool) "auto >= 1" true (Par.resolve_jobs 0 >= 1)

let test_backend_of_string () =
  List.iter
    (fun (name, b) ->
      (match Par.backend_of_string name with
      | Ok b' -> Alcotest.(check bool) name true (b = b')
      | Error e -> Alcotest.fail e);
      Alcotest.(check string) "round-trip" name (Par.backend_to_string b))
    Par.all_backends;
  match Par.backend_of_string "threads" with
  | Ok _ -> Alcotest.fail "expected an error for unknown backend"
  | Error _ -> ()

let test_pool_reuse () =
  Par.Pool.with_pool ~workers:3 (fun pool ->
      check_int "workers" 3 (Par.Pool.workers pool);
      for round = 1 to 4 do
        let out =
          Par.Pool.sweep pool
            ~tasks:(Array.init 33 (fun i -> i))
            ~f:(fun i -> i * round)
        in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 33 (fun i -> i * round))
          out
      done)

let test_sweep_seeded_jobs_invariant () =
  (* Each task draws from its own Prng substream, so the drawn values
     must not depend on which domain ran the task. *)
  let tasks = Array.init 40 (fun i -> i) in
  let f ~rng i = (i, Prng.int rng 1_000_000, Prng.float rng 1.) in
  let run ?backend jobs =
    Par.sweep_seeded ?backend ~jobs ~rng:(Prng.create 9) ~tasks f
  in
  let serial = run 1 in
  Alcotest.(check (array (triple int int (float 0.))))
    "jobs 1 = jobs 4" serial (run 4);
  Alcotest.(check (array (triple int int (float 0.))))
    "jobs 1 = jobs 7" serial (run 7);
  Alcotest.(check (array (triple int int (float 0.))))
    "jobs 1 = processes jobs 4" serial
    (run ~backend:Par.Processes 4)

(* Per-task Invariant sinks: each task collects violations locally and
   returns them; the merged arrays must line up with task order, not
   completion order. *)
let test_per_task_sinks_merge_in_order () =
  let module I = Hsfq_check.Invariant in
  let run ?backend jobs =
    Par.sweep ?backend ~jobs
      ~tasks:(Array.init 16 (fun i -> i))
      (fun i ->
        let sink = I.create ~policy:I.Collect () in
        for k = 0 to i do
          I.report sink
            {
              invariant = "synthetic";
              event = Printf.sprintf "task %d step %d" i k;
              node = "/test";
              detail = "";
            }
        done;
        List.map I.violation_to_string (I.violations sink))
  in
  let serial = run 1 in
  Array.iteri
    (fun i vs -> check_int (Printf.sprintf "task %d count" i) (i + 1) (List.length vs))
    serial;
  Alcotest.(check (array (list string))) "jobs 1 = jobs 4" serial (run 4);
  Alcotest.(check (array (list string)))
    "jobs 1 = processes jobs 4" serial
    (run ~backend:Par.Processes 4)

(* -------------------- real fan-out surfaces ------------------------- *)

(* A torture outcome rendered in full — executed trace, violation list,
   crash — so equality below means the whole verdict matched, not just
   the pass/fail bit. *)
let outcome_repr (o : T.outcome) =
  Printf.sprintf "%d ops | %s | viol:[%s] | crash:%s" o.ops_run
    (T.trace_to_string o.trace)
    (String.concat "; "
       (List.map Hsfq_check.Invariant.violation_to_string o.violations))
    (Option.value o.crash ~default:"-")

let test_torture_sweep_determinism () =
  let seeds = Array.init 6 (fun i -> 100 + i) in
  let cfg = T.config ~ops:1_500 ~audit_period:2 0 in
  let run ?backend jobs =
    Array.map outcome_repr (T.sweep ?backend ~jobs cfg ~seeds)
  in
  let serial = run 1 in
  Alcotest.(check (array string)) "jobs 1 = jobs 4" serial (run 4);
  Alcotest.(check (array string)) "jobs 1 = jobs 0 (auto)" serial (run 0);
  Alcotest.(check (array string))
    "jobs 1 = processes jobs 4" serial
    (run ~backend:Par.Processes 4);
  Alcotest.(check (array string))
    "jobs 1 = serial backend" serial
    (run ~backend:Par.Serial 4)

let test_csv_sweep_determinism () =
  (* Byte equality of exported figure CSVs across parallelism. A subset
     keeps the suite quick; the full set runs in `hsfq_sim csv --all`. *)
  let ids =
    Array.of_list
      (List.filteri (fun i _ -> i < 5) (E.Csv_export.exportable ()))
  in
  let run ?backend jobs =
    Par.sweep ?backend ~jobs ~tasks:ids (fun id ->
        match E.Csv_export.export id with
        | Ok files ->
          String.concat "\x00"
            (List.concat_map (fun (name, contents) -> [ name; contents ]) files)
        | Error e -> "error: " ^ e)
  in
  let serial = run 1 in
  Alcotest.(check (array string)) "figure CSV bytes, jobs 1 = jobs 4" serial
    (run 4);
  Alcotest.(check (array string))
    "figure CSV bytes, jobs 1 = processes jobs 4" serial
    (run ~backend:Par.Processes 4)

let () =
  (* Registration order is load-bearing: every test whose process-backend
     half must genuinely fork runs before the first domain spawn.  Tests
     iterating [par_backends] run Processes before Domains internally,
     and the first of them is also the first domain use of the suite. *)
  Alcotest.run "par"
    [
      ( "processes-first",
        [
          Alcotest.test_case "process worker death is an error" `Quick
            test_process_worker_death_is_an_error;
          Alcotest.test_case "resolve_jobs policy" `Quick
            test_resolve_jobs_policy;
          Alcotest.test_case "backend names" `Quick test_backend_of_string;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "matches serial map" `Quick
            test_sweep_matches_serial_map;
          Alcotest.test_case "empty and single" `Quick
            test_sweep_empty_and_single;
          Alcotest.test_case "re-raises lowest failure" `Quick
            test_sweep_reraises_lowest_failure;
          Alcotest.test_case "workers observe --minor-heap" `Quick
            test_workers_observe_minor_heap;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "seeded substreams" `Quick
            test_sweep_seeded_jobs_invariant;
          Alcotest.test_case "sink merge order" `Quick
            test_per_task_sinks_merge_in_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "torture verdicts" `Quick
            test_torture_sweep_determinism;
          Alcotest.test_case "figure CSV bytes" `Quick
            test_csv_sweep_determinism;
        ] );
    ]
